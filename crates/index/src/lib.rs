//! Pluggable concurrent shard-state backends for SHHC nodes.
//!
//! The paper's dedup workload is overwhelmingly *queries* against the
//! RAM fingerprint index, yet through PR 5 every shard's RAM state was a
//! single-writer structure owned by exactly one worker thread —
//! parallelism stopped at the shard count regardless of cores. This
//! crate factors the node's RAM index behind a map-bench-style
//! [`Collection`]/[`CollectionHandle`] adapter pair and ships three
//! interchangeable implementations:
//!
//! | backend | reads | writes | suited to |
//! |---|---|---|---|
//! | [`SingleWriterMap`] | serialize on one mutex | serialize | the retained baseline: one owner thread |
//! | [`StripedMap`] | shared `RwLock` per stripe — readers never block readers | exclusive per stripe | balanced read/write mixes |
//! | [`SnapshotMap`] | lock-free against an epoch-validated frozen snapshot | striped delta overlay, COW publish | read-dominant probe traffic |
//!
//! A [`Collection`] is the cheaply-cloneable shared structure; each
//! thread *pins* it into a [`CollectionHandle`] it owns exclusively.
//! For the locking backends a handle is just another reference; for
//! [`SnapshotMap`] the handle caches the current frozen [`Arc`] snapshot
//! and revalidates it with one atomic epoch load per operation, so the
//! bulk of a read-mostly workload touches no lock at all.
//!
//! Contention is *measured*, not guessed: every backend counts
//! [`IndexStats::lock_waits`] (a `try_lock` that failed and had to
//! block) and [`IndexStats::read_retries`] (snapshot refreshes after a
//! publish), which the node surfaces through `NodeStats` and
//! `ClusterStats`. The `ext_map_shootout` bench sweeps every backend
//! over reader-thread counts so the choice is a measured config knob.
//!
//! [`Arc`]: std::sync::Arc
//!
//! # Examples
//!
//! ```
//! use shhc_index::{AnyIndex, BackendKind, Collection, CollectionHandle};
//! use shhc_types::Fingerprint;
//!
//! let index: AnyIndex<Fingerprint, u64> = AnyIndex::new(BackendKind::Striped, 64);
//! let mut handle = index.pin();
//! let fp = Fingerprint::from_u64(7);
//! assert_eq!(handle.insert(fp, 42), None);
//! assert_eq!(handle.get(&fp), Some(42));
//! assert_eq!(handle.remove(&fp), Some(42));
//! assert_eq!(index.len(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod single;
mod snapshot;
mod stats;
mod striped;

pub use any::{AnyHandle, AnyIndex};
pub use single::{SingleWriterHandle, SingleWriterMap};
pub use snapshot::{SnapshotHandle, SnapshotMap};
pub use stats::IndexStats;
pub use striped::{StripedHandle, StripedMap};

use std::hash::{BuildHasher, Hash};

/// Marker bounds every index key must satisfy (fingerprints do).
pub trait IndexKey: Hash + Eq + Clone + Send + Sync + 'static {}
impl<T: Hash + Eq + Clone + Send + Sync + 'static> IndexKey for T {}

/// Marker bounds every index value must satisfy.
pub trait IndexValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> IndexValue for T {}

/// A concurrent map shared between threads — the factory half of the
/// adapter pair (map-bench's `Collection`).
///
/// Cloning a collection is cheap (an `Arc` bump) and yields another
/// view of the *same* map. Each thread calls [`Collection::pin`] once
/// and performs its operations through the returned handle.
pub trait Collection: Clone + Send + Sync + 'static {
    /// Key type.
    type Key: IndexKey;
    /// Value type.
    type Value: IndexValue;
    /// The per-thread accessor.
    type Handle: CollectionHandle<Key = Self::Key, Value = Self::Value>;

    /// Creates this thread's handle.
    fn pin(&self) -> Self::Handle;

    /// Contention counters accumulated so far (all handles combined).
    fn stats(&self) -> IndexStats;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live `(key, value)` pair, in unspecified order. Meant for
    /// verification and tests, not the hot path.
    fn snapshot_entries(&self) -> Vec<(Self::Key, Self::Value)>;
}

/// A per-thread accessor onto a [`Collection`] (map-bench's
/// `CollectionHandle`).
///
/// Methods take `&mut self`: a handle belongs to exactly one thread,
/// which lets implementations keep per-thread state (the
/// [`SnapshotHandle`] caches the current frozen snapshot and swaps it on
/// epoch change without any synchronization of its own).
pub trait CollectionHandle: Send {
    /// Key type.
    type Key: IndexKey;
    /// Value type.
    type Value: IndexValue;

    /// Looks up `key`, returning its value when present.
    fn get(&mut self, key: &Self::Key) -> Option<Self::Value>;

    /// Upserts `key`, returning the previous value when it existed.
    fn insert(&mut self, key: Self::Key, value: Self::Value) -> Option<Self::Value>;

    /// Inserts `key` only when absent; returns the existing value (and
    /// leaves it untouched) when present.
    fn insert_if_absent(&mut self, key: Self::Key, value: Self::Value) -> Option<Self::Value>;

    /// Removes `key`, returning its value when it was present.
    fn remove(&mut self, key: &Self::Key) -> Option<Self::Value>;
}

/// Which concurrent backend a node's RAM index runs on.
///
/// Parsed from config or the `SHHC_TEST_BACKEND` environment variable
/// (the CI matrix leg); see the crate docs for the trade-off table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The retained baseline: one mutex, single-writer semantics.
    #[default]
    Single,
    /// Striped `RwLock` map: readers never block readers.
    Striped,
    /// Epoch-validated COW snapshot: lock-free read-mostly probes.
    Snapshot,
}

impl BackendKind {
    /// Every backend, in baseline-first order (bench sweeps).
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Single,
        BackendKind::Striped,
        BackendKind::Snapshot,
    ];

    /// Whether this backend supports concurrent readers (everything but
    /// the single-writer baseline).
    pub fn concurrent(self) -> bool {
        !matches!(self, BackendKind::Single)
    }

    /// Reads a backend from an environment variable, returning `None`
    /// when unset, empty, or unparseable.
    pub fn from_env(var: &str) -> Option<Self> {
        std::env::var(var).ok()?.parse().ok()
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Single => "single",
            BackendKind::Striped => "striped",
            BackendKind::Snapshot => "snapshot",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "single" | "single-writer" | "mutex" => Ok(BackendKind::Single),
            "striped" | "striped-rwlock" | "rwlock" => Ok(BackendKind::Striped),
            "snapshot" | "cow" | "lockfree" | "lock-free" => Ok(BackendKind::Snapshot),
            other => Err(format!("unknown index backend {other:?}")),
        }
    }
}

/// Number of stripes the striped backends default to: enough that 8–16
/// threads rarely collide on a stripe, small enough that per-stripe maps
/// stay cache-friendly.
pub const DEFAULT_STRIPES: usize = 64;

pub(crate) fn stripe_count(requested: usize) -> usize {
    requested.next_power_of_two().max(1)
}

/// Picks the stripe for a hash: the *upper* bits, decorrelated from the
/// low bits `HashMap` masks for its own buckets.
pub(crate) fn stripe_of(hash: u64, mask: usize) -> usize {
    ((hash >> 32) as usize ^ (hash as usize)) & mask
}

pub(crate) fn hash_one<K: Hash, H: BuildHasher>(hasher: &H, key: &K) -> u64 {
    hasher.hash_one(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_and_displays() {
        for kind in BackendKind::ALL {
            let round: BackendKind = kind.to_string().parse().unwrap();
            assert_eq!(round, kind);
        }
        assert_eq!("COW".parse::<BackendKind>().unwrap(), BackendKind::Snapshot);
        assert_eq!(
            "single-writer".parse::<BackendKind>().unwrap(),
            BackendKind::Single
        );
        assert!("quantum".parse::<BackendKind>().is_err());
        assert!(!BackendKind::Single.concurrent());
        assert!(BackendKind::Striped.concurrent());
        assert!(BackendKind::Snapshot.concurrent());
    }

    #[test]
    fn stripe_helpers() {
        assert_eq!(stripe_count(0), 1);
        assert_eq!(stripe_count(1), 1);
        assert_eq!(stripe_count(48), 64);
        assert_eq!(stripe_count(64), 64);
        let mask = stripe_count(64) - 1;
        for h in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert!(stripe_of(h, mask) <= mask);
        }
    }
}
