//! Wrapping ranges over the 64-bit routing-key space.

use serde::{Deserialize, Serialize};

/// An inclusive, possibly wrapping range of 64-bit routing keys.
///
/// The fingerprint space is a ring: a range whose `first` exceeds its
/// `last` wraps through `u64::MAX` → `0`. Ranges are the unit of
/// migration during membership changes — a [`MigrationPlan`] describes
/// which key ranges change owner between two ring epochs.
///
/// [`MigrationPlan`]: https://docs.rs/shhc-ring
///
/// # Examples
///
/// ```
/// use shhc_types::KeyRange;
///
/// let plain = KeyRange::new(10, 20);
/// assert!(plain.contains(15));
/// assert!(!plain.contains(21));
///
/// let wrap = KeyRange::new(u64::MAX - 1, 1);
/// assert!(wrap.contains(u64::MAX));
/// assert!(wrap.contains(0));
/// assert!(!wrap.contains(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyRange {
    /// First key of the range (inclusive).
    pub first: u64,
    /// Last key of the range (inclusive). `last < first` means the range
    /// wraps through zero.
    pub last: u64,
}

impl KeyRange {
    /// Creates the inclusive range `[first, last]` (wrapping when
    /// `last < first`).
    pub const fn new(first: u64, last: u64) -> Self {
        KeyRange { first, last }
    }

    /// The range covering the entire key space.
    pub const fn full() -> Self {
        KeyRange {
            first: 0,
            last: u64::MAX,
        }
    }

    /// Whether `key` falls inside the range.
    pub fn contains(&self, key: u64) -> bool {
        if self.first <= self.last {
            self.first <= key && key <= self.last
        } else {
            key >= self.first || key <= self.last
        }
    }

    /// Number of keys in the range (always ≥ 1; needs 65 bits for the
    /// full space).
    pub fn span(&self) -> u128 {
        if self.first <= self.last {
            (self.last - self.first) as u128 + 1
        } else {
            (u64::MAX as u128 + 1) - (self.first - self.last) as u128 + 1
        }
    }

    /// Whether the range wraps through `u64::MAX` → `0`.
    pub fn wraps(&self) -> bool {
        self.first > self.last
    }
}

impl std::fmt::Display for KeyRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#018x}, {:#018x}]", self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_range_bounds_are_inclusive() {
        let r = KeyRange::new(5, 9);
        assert!(r.contains(5));
        assert!(r.contains(9));
        assert!(!r.contains(4));
        assert!(!r.contains(10));
        assert_eq!(r.span(), 5);
        assert!(!r.wraps());
    }

    #[test]
    fn wrapping_range_covers_both_ends() {
        let r = KeyRange::new(u64::MAX - 2, 2);
        assert!(r.wraps());
        for k in [u64::MAX - 2, u64::MAX, 0, 2] {
            assert!(r.contains(k), "{k}");
        }
        assert!(!r.contains(3));
        assert!(!r.contains(u64::MAX - 3));
        assert_eq!(r.span(), 6);
    }

    #[test]
    fn single_key_range() {
        let r = KeyRange::new(7, 7);
        assert!(r.contains(7));
        assert!(!r.contains(8));
        assert_eq!(r.span(), 1);
    }

    #[test]
    fn full_range_contains_everything() {
        let r = KeyRange::full();
        for k in [0, 1, u64::MAX / 2, u64::MAX] {
            assert!(r.contains(k));
        }
        assert_eq!(r.span(), u64::MAX as u128 + 1);
    }

    #[test]
    fn display_is_hex() {
        let r = KeyRange::new(0, 15);
        assert_eq!(format!("{r}"), "[0x0000000000000000, 0x000000000000000f]");
    }
}
