//! Virtual-time duration type shared by the device and network models.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A non-negative duration (or instant on a virtual clock) in nanoseconds.
///
/// The device models (`shhc-flash`), network model (`shhc-net`) and the
/// discrete-event simulator (`shhc-sim`) all account costs on virtual
/// clocks measured in [`Nanos`]. Using one newtype everywhere keeps
/// microsecond/nanosecond confusion out of the arithmetic.
///
/// # Examples
///
/// ```
/// use shhc_types::Nanos;
///
/// let t = Nanos::from_micros(25) + Nanos::from_micros(75);
/// assert_eq!(t.as_micros_f64(), 100.0);
/// assert_eq!(t * 3, Nanos::from_micros(300));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Converts to a [`std::time::Duration`].
    pub const fn to_duration(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl Add for Nanos {
    type Output = Nanos;

    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;

    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;

    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;

    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl From<Nanos> for u64 {
    fn from(n: Nanos) -> u64 {
        n.0
    }
}

impl From<std::time::Duration> for Nanos {
    fn from(d: std::time::Duration) -> Self {
        Nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nanos({self})")
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_micros(), 1_000);
        assert_eq!(Nanos::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(Nanos::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a * 2, Nanos::from_micros(20));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn sum_of_iter() {
        let total: Nanos = (1..=4).map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(Nanos::new(5).to_string(), "5 ns");
        assert_eq!(Nanos::from_micros(5).to_string(), "5.000 µs");
        assert_eq!(Nanos::from_millis(5).to_string(), "5.000 ms");
        assert_eq!(Nanos::from_secs(5).to_string(), "5.000 s");
    }

    #[test]
    fn duration_round_trip() {
        let n = Nanos::from_millis(123);
        let d = n.to_duration();
        assert_eq!(Nanos::from(d), n);
    }
}
