//! Shared identifiers, fingerprints and error types for the SHHC
//! reproduction.
//!
//! This crate defines the vocabulary the rest of the workspace speaks:
//! [`Fingerprint`] (a SHA-1 digest of a chunk), [`ChunkId`], [`NodeId`],
//! byte-size helpers and the common [`Error`] type used by fallible
//! substrate operations.
//!
//! # Examples
//!
//! ```
//! use shhc_types::Fingerprint;
//!
//! let fp = Fingerprint::from_bytes([0xab; 20]);
//! assert_eq!(fp.to_hex().len(), 40);
//! assert_eq!(fp, "abababababababababababababababababababab".parse().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod error;
mod fingerprint;
mod fphash;
mod ids;
mod range;
mod size;
mod time;

pub use admission::Admission;
pub use error::{Error, Result};
pub use fingerprint::{Fingerprint, ParseFingerprintError, FINGERPRINT_LEN};
pub use fphash::{FingerprintBuildHasher, FingerprintHasher, FpHashMap, FpHashSet};
pub use ids::{ChunkId, ClientId, NodeId, StreamId};
pub use range::KeyRange;
pub use size::{ByteSize, GIB, KIB, MIB};
pub use time::Nanos;
