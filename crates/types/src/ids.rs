//! Small newtype identifiers used across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates the identifier from its raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index widened to `usize`, convenient for
            /// vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies one hash node in the cluster.
    ///
    /// # Examples
    ///
    /// ```
    /// use shhc_types::NodeId;
    /// let n = NodeId::new(3);
    /// assert_eq!(n.index(), 3);
    /// assert_eq!(n.to_string(), "node-3");
    /// ```
    NodeId,
    "node-"
);

id_type!(
    /// Identifies a backup client (one machine or mobile device).
    ///
    /// # Examples
    ///
    /// ```
    /// use shhc_types::ClientId;
    /// assert_eq!(ClientId::new(0).to_string(), "client-0");
    /// ```
    ClientId,
    "client-"
);

id_type!(
    /// Identifies one backup stream (a single backup session of a client).
    ///
    /// # Examples
    ///
    /// ```
    /// use shhc_types::StreamId;
    /// assert_eq!(StreamId::new(9).raw(), 9);
    /// ```
    StreamId,
    "stream-"
);

/// Identifies a stored chunk inside the cloud-storage backend: a container
/// number plus the slot within the container.
///
/// # Examples
///
/// ```
/// use shhc_types::ChunkId;
/// let id = ChunkId::new(2, 17);
/// assert_eq!(id.container(), 2);
/// assert_eq!(id.slot(), 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId {
    container: u32,
    slot: u32,
}

impl ChunkId {
    /// Creates a chunk id from a container number and slot index.
    pub const fn new(container: u32, slot: u32) -> Self {
        ChunkId { container, slot }
    }

    /// The container (large append-only file) holding the chunk.
    pub const fn container(self) -> u32 {
        self.container
    }

    /// The slot within the container.
    pub const fn slot(self) -> u32 {
        self.slot
    }

    /// Packs the id into a single `u64` (container in the high half).
    pub const fn to_u64(self) -> u64 {
        ((self.container as u64) << 32) | self.slot as u64
    }

    /// Unpacks an id previously packed with [`ChunkId::to_u64`].
    pub const fn from_u64(v: u64) -> Self {
        ChunkId {
            container: (v >> 32) as u32,
            slot: v as u32,
        }
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk-{}.{}", self.container, self.slot)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk-{}.{}", self.container, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_raw() {
        let id = NodeId::new(7);
        assert_eq!(u32::from(id), 7);
        assert_eq!(NodeId::from(7u32), id);
    }

    #[test]
    fn chunk_id_pack_unpack() {
        let id = ChunkId::new(0xdead, 0xbeef);
        assert_eq!(ChunkId::from_u64(id.to_u64()), id);
        assert_eq!(id.to_string(), "chunk-57005.48879");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(ChunkId::new(0, 5) < ChunkId::new(1, 0));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", StreamId::default()).is_empty());
        assert!(!format!("{:?}", ClientId::new(2)).is_empty());
    }
}
