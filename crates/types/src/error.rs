//! The shared error type for substrate operations.

use std::fmt;

/// Convenience alias for results using the shared [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by SHHC substrate operations.
///
/// Individual crates use the variants relevant to them; the type lives here
/// so cross-crate call chains (node → flash → device) can propagate one
/// error without conversion boilerplate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An argument was outside the valid range; the message explains which.
    InvalidArgument(String),
    /// A device-level constraint was violated (e.g. programming a
    /// non-erased flash page).
    DeviceViolation(String),
    /// The device or store ran out of space.
    OutOfSpace {
        /// What filled up (e.g. "flash device", "container store").
        what: String,
    },
    /// A referenced entity (chunk, node, record) does not exist.
    NotFound(String),
    /// Data failed an integrity check on read.
    Corruption(String),
    /// A node or transport endpoint is not reachable.
    Unavailable(String),
    /// An underlying I/O error, stringified to keep the type `Clone`/`Eq`.
    Io(String),
    /// Decoding a wire message or stored record failed.
    Decode(String),
    /// The request was shed by admission control: the component is past
    /// its configured capacity and chose to fail fast rather than queue
    /// without bound. Retryable — the condition is load, not state.
    Overloaded(String),
}

impl Error {
    /// Builds an [`Error::InvalidArgument`] from anything displayable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        Error::InvalidArgument(msg.to_string())
    }

    /// Builds an [`Error::NotFound`] from anything displayable.
    pub fn not_found(msg: impl fmt::Display) -> Self {
        Error::NotFound(msg.to_string())
    }

    /// Builds an [`Error::Overloaded`] from anything displayable.
    pub fn overloaded(msg: impl fmt::Display) -> Self {
        Error::Overloaded(msg.to_string())
    }

    /// True for errors that describe a transient load condition rather
    /// than a state problem — a caller may back off and retry.
    pub fn is_overload(&self) -> bool {
        matches!(self, Error::Overloaded(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::DeviceViolation(m) => write!(f, "device constraint violated: {m}"),
            Error::OutOfSpace { what } => write!(f, "out of space in {what}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Corruption(m) => write!(f, "data corruption: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Decode(m) => write!(f, "decode error: {m}"),
            Error::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::invalid("capacity must be nonzero").to_string(),
            "invalid argument: capacity must be nonzero"
        );
        assert_eq!(
            Error::OutOfSpace {
                what: "flash device".into()
            }
            .to_string(),
            "out of space in flash device"
        );
        assert_eq!(
            Error::not_found("chunk-1.2").to_string(),
            "not found: chunk-1.2"
        );
        let shed = Error::overloaded("front-end past 4096 pending");
        assert_eq!(shed.to_string(), "overloaded: front-end past 4096 pending");
        assert!(shed.is_overload());
        assert!(!Error::not_found("x").is_overload());
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("boom");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(ref m) if m.contains("boom")));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
