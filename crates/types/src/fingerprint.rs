//! The 160-bit chunk fingerprint type.

use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Length in bytes of a [`Fingerprint`] (SHA-1 digest size).
pub const FINGERPRINT_LEN: usize = 20;

/// A 160-bit content fingerprint of a data chunk.
///
/// SHHC identifies chunks by the SHA-1 digest of their content, exactly as
/// the paper does. The type is a thin, copyable wrapper around the 20 raw
/// digest bytes and provides the derived keys the rest of the system needs:
/// a routing key for ring placement ([`Fingerprint::route_key`]) and bucket
/// keys for the on-flash table ([`Fingerprint::bucket_key`]).
///
/// # Examples
///
/// ```
/// use shhc_types::Fingerprint;
///
/// let fp = Fingerprint::from_bytes([7; 20]);
/// assert_ne!(fp.route_key(), 0);
/// assert_eq!(fp, fp.to_hex().parse().unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint([u8; FINGERPRINT_LEN]);

impl Fingerprint {
    /// The all-zero fingerprint. Useful as a sentinel in fixed-size records.
    pub const ZERO: Fingerprint = Fingerprint([0; FINGERPRINT_LEN]);

    /// Creates a fingerprint from its raw digest bytes.
    pub const fn from_bytes(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }

    /// Creates a fingerprint whose first eight bytes encode `v` (big
    /// endian) and whose remaining bytes are a deterministic mix of `v`.
    ///
    /// This is a convenience for tests and synthetic workloads: distinct
    /// `v` always produce distinct fingerprints, and the bit mixing keeps
    /// the value spread uniformly enough for routing experiments.
    pub fn from_u64(v: u64) -> Self {
        let mut b = [0u8; FINGERPRINT_LEN];
        b[..8].copy_from_slice(&v.to_be_bytes());
        // SplitMix64-style finalizers fill the tail so that the low bytes
        // are well distributed even for small sequential inputs.
        let mut x = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for chunk in b[8..].chunks_mut(8) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let bytes = x.to_be_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Fingerprint(b)
    }

    /// Returns the raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; FINGERPRINT_LEN] {
        &self.0
    }

    /// Consumes the fingerprint, returning the raw digest bytes.
    pub const fn into_bytes(self) -> [u8; FINGERPRINT_LEN] {
        self.0
    }

    /// Returns the first eight digest bytes as a big-endian `u64`.
    ///
    /// Because SHA-1 output is uniformly distributed, this prefix is the
    /// natural key for placing the fingerprint on the hash ring — the same
    /// trick the paper's "each node holds a range of hash values" relies
    /// on.
    pub fn route_key(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice length is 8"))
    }

    /// Returns bytes 8..16 as a big-endian `u64`.
    ///
    /// This second, independent 64-bit view is used for bucket selection in
    /// on-flash tables and for bloom-filter double hashing, so that routing
    /// and bucketing decisions are not correlated.
    pub fn bucket_key(&self) -> u64 {
        u64::from_be_bytes(self.0[8..16].try_into().expect("slice length is 8"))
    }

    /// Returns the trailing four bytes as a big-endian `u32`, a compact
    /// checksum used by compact in-RAM signatures (ChunkStash-style).
    pub fn tag32(&self) -> u32 {
        u32::from_be_bytes(self.0[16..20].try_into().expect("slice length is 4"))
    }

    /// Formats the fingerprint as a 40-character lowercase hex string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(FINGERPRINT_LEN * 2);
        for b in &self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({})", self.to_hex())
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; FINGERPRINT_LEN]> for Fingerprint {
    fn from(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }
}

impl From<Fingerprint> for [u8; FINGERPRINT_LEN] {
    fn from(fp: Fingerprint) -> Self {
        fp.0
    }
}

impl AsRef<[u8]> for Fingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a [`Fingerprint`] from hex fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFingerprintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Length(usize),
    Digit(char),
}

impl fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Length(n) => {
                write!(
                    f,
                    "expected {} hex characters, found {n}",
                    FINGERPRINT_LEN * 2
                )
            }
            ParseErrorKind::Digit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseFingerprintError {}

impl FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != FINGERPRINT_LEN * 2 {
            return Err(ParseFingerprintError {
                kind: ParseErrorKind::Length(s.len()),
            });
        }
        let mut out = [0u8; FINGERPRINT_LEN];
        let bytes = s.as_bytes();
        for (i, slot) in out.iter_mut().enumerate() {
            let hi = hex_val(bytes[2 * i]).ok_or(ParseFingerprintError {
                kind: ParseErrorKind::Digit(bytes[2 * i] as char),
            })?;
            let lo = hex_val(bytes[2 * i + 1]).ok_or(ParseFingerprintError {
                kind: ParseErrorKind::Digit(bytes[2 * i + 1] as char),
            })?;
            *slot = (hi << 4) | lo;
        }
        Ok(Fingerprint(out))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl Serialize for Fingerprint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        if serializer.is_human_readable() {
            serializer.serialize_str(&self.to_hex())
        } else {
            serializer.serialize_bytes(&self.0)
        }
    }
}

impl<'de> Deserialize<'de> for Fingerprint {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        if deserializer.is_human_readable() {
            let s = String::deserialize(deserializer)?;
            s.parse().map_err(D::Error::custom)
        } else {
            let v: Vec<u8> = Vec::deserialize(deserializer)?;
            let arr: [u8; FINGERPRINT_LEN] = v
                .try_into()
                .map_err(|v: Vec<u8>| D::Error::custom(format!("bad length {}", v.len())))?;
            Ok(Fingerprint(arr))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint::from_u64(0xdead_beef_cafe_f00d);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 40);
        let back: Fingerprint = hex.parse().expect("parse back");
        assert_eq!(fp, back);
    }

    #[test]
    fn parse_rejects_bad_length() {
        let err = "abcd".parse::<Fingerprint>().unwrap_err();
        assert!(err.to_string().contains("40 hex characters"));
    }

    #[test]
    fn parse_rejects_bad_digit() {
        let s = "zz".repeat(20);
        let err = s.parse::<Fingerprint>().unwrap_err();
        assert!(err.to_string().contains("invalid hex digit"));
    }

    #[test]
    fn parse_accepts_uppercase() {
        let fp = Fingerprint::from_bytes([0xAB; 20]);
        let upper = fp.to_hex().to_uppercase();
        assert_eq!(upper.parse::<Fingerprint>().unwrap(), fp);
    }

    #[test]
    fn from_u64_is_injective_on_prefix() {
        let a = Fingerprint::from_u64(1);
        let b = Fingerprint::from_u64(2);
        assert_ne!(a, b);
        assert_eq!(a.route_key(), 1);
        assert_eq!(b.route_key(), 2);
    }

    #[test]
    fn keys_read_expected_byte_ranges() {
        let mut bytes = [0u8; 20];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let fp = Fingerprint::from_bytes(bytes);
        assert_eq!(fp.route_key(), u64::from_be_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(
            fp.bucket_key(),
            u64::from_be_bytes([8, 9, 10, 11, 12, 13, 14, 15])
        );
        assert_eq!(fp.tag32(), u32::from_be_bytes([16, 17, 18, 19]));
    }

    #[test]
    fn display_matches_hex() {
        let fp = Fingerprint::from_u64(42);
        assert_eq!(format!("{fp}"), fp.to_hex());
        assert!(format!("{fp:?}").starts_with("Fingerprint("));
    }

    #[test]
    fn serde_json_round_trip() {
        let fp = Fingerprint::from_u64(7);
        let json = serde_json::to_string(&fp).expect("serialize");
        assert!(json.contains(&fp.to_hex()));
        let back: Fingerprint = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(fp, back);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(Fingerprint::default(), Fingerprint::ZERO);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Fingerprint::from_bytes([0; 20]);
        let mut high = [0; 20];
        high[0] = 1;
        let b = Fingerprint::from_bytes(high);
        assert!(a < b);
    }
}
