//! Byte-size helpers.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A count of bytes with human-readable formatting.
///
/// # Examples
///
/// ```
/// use shhc_types::ByteSize;
///
/// let total = ByteSize::from_kib(8) + ByteSize::new(512);
/// assert_eq!(total.as_u64(), 8 * 1024 + 512);
/// assert_eq!(ByteSize::from_mib(4).to_string(), "4.00 MiB");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Creates a size from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size expressed in KiB.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * KIB)
    }

    /// Creates a size expressed in MiB.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * MIB)
    }

    /// Creates a size expressed in GiB.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * GIB)
    }

    /// Returns the raw number of bytes.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the size as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `usize` (only possible on
    /// 32-bit targets).
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("byte size fits in usize")
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

impl From<ByteSize> for u64 {
    fn from(v: ByteSize) -> u64 {
        v.0
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({self})")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_kib(4);
        let b = ByteSize::new(96);
        assert_eq!((a + b).as_u64(), 4192);
        assert_eq!((a - b).as_u64(), 4000);
        assert_eq!(b.saturating_sub(a), ByteSize::new(0));
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize::new(17).to_string(), "17 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteSize::from_gib(1).to_string(), "1.00 GiB");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut s = ByteSize::default();
        s += ByteSize::new(10);
        s += ByteSize::new(20);
        assert_eq!(s.as_u64(), 30);
    }
}
