//! A fingerprint-aware replacement for std's default (SipHash) hasher.
//!
//! Every RAM-side index in SHHC is keyed by values that are already
//! uniformly distributed — SHA-1 fingerprints, or ids derived from them.
//! Running 20 uniform bytes through SipHash buys collision resistance the
//! keys cannot exploit and costs real time on the lookup hot path (the
//! same observation ChunkStash-style flash indexes build on). The hasher
//! here instead *folds* the key bytes into a 64-bit state with one
//! multiply-xor round per word: identity-strength mixing for uniform
//! keys, and still a respectable avalanche for the small integer keys
//! unit tests and ablation benches use.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Multiplicative constant (golden-ratio derived, as in FxHash/SplitMix).
const FOLD: u64 = 0x9e37_79b9_7f4a_7c15;

/// A `HashMap` keyed by fingerprints (or other uniform keys), using
/// [`FingerprintBuildHasher`] instead of SipHash.
pub type FpHashMap<K, V> = HashMap<K, V, FingerprintBuildHasher>;

/// A `HashSet` counterpart of [`FpHashMap`].
pub type FpHashSet<K> = HashSet<K, FingerprintBuildHasher>;

/// Builds [`FingerprintHasher`]s. Stateless, so hashes are stable across
/// maps and process runs (no per-map random seed to defeat — the keys are
/// content hashes, not attacker-chosen strings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FingerprintBuildHasher;

impl BuildHasher for FingerprintBuildHasher {
    type Hasher = FingerprintHasher;

    fn build_hasher(&self) -> FingerprintHasher {
        FingerprintHasher { state: 0 }
    }
}

/// The folding hasher produced by [`FingerprintBuildHasher`].
///
/// # Examples
///
/// ```
/// use shhc_types::{Fingerprint, FpHashMap};
///
/// let mut index: FpHashMap<Fingerprint, u64> = FpHashMap::default();
/// index.insert(Fingerprint::from_u64(7), 42);
/// assert_eq!(index[&Fingerprint::from_u64(7)], 42);
/// ```
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u64,
}

impl FingerprintHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        // One xor-rotate-multiply round per word: enough diffusion to
        // spread low-entropy integer keys, nearly free for the uniform
        // fingerprint bytes that dominate production traffic.
        self.state = (self.state.rotate_left(29) ^ word).wrapping_mul(FOLD);
    }
}

impl Hasher for FingerprintHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so HashMap's low-bit masking sees every input
        // bit (the multiply alone leaves the low bits weak).
        let mut x = self.state;
        x ^= x >> 32;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fingerprint;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        FingerprintBuildHasher.hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let fp = Fingerprint::from_u64(123);
        assert_eq!(hash_of(&fp), hash_of(&fp));
    }

    #[test]
    fn distinct_fingerprints_hash_apart() {
        let a = hash_of(&Fingerprint::from_u64(1));
        let b = hash_of(&Fingerprint::from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn small_integers_spread_over_low_bits() {
        // HashMap masks the hash to its (power-of-two) bucket count, so
        // the low bits of sequential keys must not collide en masse.
        let mut low7 = std::collections::HashSet::new();
        for i in 0u64..128 {
            low7.insert(hash_of(&i) & 127);
        }
        assert!(low7.len() > 70, "only {} of 128 low-bit slots", low7.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FpHashMap<u32, &str> = FpHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FpHashSet<Fingerprint> = FpHashSet::default();
        assert!(set.insert(Fingerprint::from_u64(9)));
        assert!(!set.insert(Fingerprint::from_u64(9)));
    }

    #[test]
    fn byte_stream_framing_matters() {
        // write(b"ab") then write(b"c") differs from write(b"abc") only
        // via length prefixes the std Hash impls add; the raw writes fold
        // identically per 8-byte word, so check words do differ.
        let mut a = FingerprintBuildHasher.build_hasher();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FingerprintBuildHasher.build_hasher();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_ne!(a.finish(), b.finish());
    }
}
