//! Cache-admission hints carried by read requests.

use crate::Error;

/// How a read's results may enter the RAM caches along its path.
///
/// Backup ingest wants every lookup cached: the next window of the same
/// stream re-references recent fingerprints (duplicate locality). A
/// streaming restore is the opposite — a one-pass scan over a manifest
/// that will never re-reference what it reads, and left unchecked it
/// evicts the ingest working set chunk by chunk. Restore-tagged reads
/// therefore carry [`Admission::Bypass`], which the cache layer maps to
/// probationary-only (scan-resistant) insertion.
///
/// # Examples
///
/// ```
/// use shhc_types::Admission;
///
/// let wire = Admission::Bypass.to_wire();
/// assert_eq!(Admission::from_wire(wire).unwrap(), Admission::Bypass);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Admission {
    /// Full cache admission with recency promotion (ingest reads).
    #[default]
    Normal,
    /// Scan-resistant admission: results may only enter the cache's
    /// probationary tier and never promote or displace protected
    /// entries (restore / one-pass scan reads).
    Bypass,
}

impl Admission {
    /// Wire encoding (a single byte).
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            Admission::Normal => 0,
            Admission::Bypass => 1,
        }
    }

    /// Decodes a wire byte.
    ///
    /// # Errors
    ///
    /// [`Error::Decode`] on an unknown admission byte.
    pub fn from_wire(byte: u8) -> Result<Self, Error> {
        match byte {
            0 => Ok(Admission::Normal),
            1 => Ok(Admission::Bypass),
            other => Err(Error::Decode(format!("unknown admission byte {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for adm in [Admission::Normal, Admission::Bypass] {
            assert_eq!(Admission::from_wire(adm.to_wire()).unwrap(), adm);
        }
    }

    #[test]
    fn unknown_byte_rejected() {
        assert!(Admission::from_wire(2).is_err());
        assert!(Admission::from_wire(0xFF).is_err());
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(Admission::default(), Admission::Normal);
    }
}
