//! Extension — self-tuning under skew: static configs vs the closed loop.
//!
//! The paper tunes SHHC for uniform SHA-1 traffic, and every knob it
//! fixes — batch close limits, the uniform shard split, equal per-shard
//! caches — is only right for that easy case. This harness drives one
//! four-shard node (true per-fingerprint device sleeps plus a per-frame
//! overhead, as in `ext_node_parallelism`) through three traces:
//!
//! - `uniform` — the paper's assumption (Zipf s = 0),
//! - `zipf_clustered` — a stationary Zipf(1.1) head landing on a
//!   contiguous ring prefix, i.e. one hot shard,
//! - `phase_shift` — the same skew whose hot set rotates mid-trace,
//!
//! and compares a grid of hand-tuned *static* front-end batch sizes
//! against the *adaptive* stack: a [`BatchTuner`] on the shared
//! front-end plus a [`ShhcCluster::autotune`] pass between waves
//! (hot-range re-split + cache autosizing). The claim under test: the
//! closed loop matches the best static configuration on every trace
//! without hand-tuning — ≥ 0.95× defaults on uniform, ≥ 0.9× the best
//! static throughput on the skewed traces (in practice it *beats* every
//! static config there, because no static batch size can fix a hot
//! shard). Autotune passes are charged to the adaptive run's clock.
//!
//! Emits `results/ext_adaptive.csv` plus `BENCH_adaptive.json` at the
//! workspace root. Set `SHHC_ADAPTIVE_QUICK=1` for a CI smoke run
//! (writes `ext_adaptive_quick.csv`, no JSON).

use std::time::{Duration, Instant};

use shhc::{
    AutotuneOptions, ClusterConfig, Durability, NodeConfig, SharedFrontend, ShhcCluster,
    SizerConfig, TunerConfig,
};
use shhc_bench::{adaptive_quick, banner, write_bench_json, write_csv};
use shhc_flash::FlashConfig;
use shhc_types::Fingerprint;
use shhc_workload::{KeyMapping, SkewSpec};

const SHARDS: u32 = 4;
const MAX_AGE: Duration = Duration::from_millis(5);
const DEFAULT_BATCH: usize = 16;

fn node_config(service_delay: Duration, frame_overhead: Duration) -> NodeConfig {
    let mut config = NodeConfig::small_test()
        .with_shards(SHARDS)
        .with_durability(Durability::Volatile);
    config.flash = FlashConfig::medium_test();
    config.cache_capacity = 4096;
    config.bloom_expected = 500_000;
    config.service_delay = service_delay;
    config.batch_overhead = frame_overhead;
    config
}

/// The three traces, sharing one seed so reruns are reproducible.
fn traces(ops: usize, keyspace: u64, seed: u64) -> Vec<SkewSpec> {
    vec![
        SkewSpec {
            name: "uniform",
            ops,
            keyspace,
            exponent: 0.0,
            mapping: KeyMapping::Clustered,
            phase_len: 0,
            seed,
        },
        SkewSpec::zipf_clustered(ops, keyspace, 1.1, seed),
        SkewSpec::phase_shifting(ops, keyspace, 1.1, ops / 3, seed),
    ]
}

struct Measured {
    lookups_per_sec: f64,
    elapsed: Duration,
    resplits: u64,
    moved: u64,
    final_batch: usize,
}

/// Drives the trace through `fe` in waves; the adaptive variant runs one
/// cluster-wide autotune pass between waves (inside the timed region —
/// the controller pays for its own scans).
fn drive(
    fe: &SharedFrontend,
    trace: &[Fingerprint],
    wave: usize,
    autotune: Option<AutotuneOptions>,
) -> Measured {
    let cluster = fe.cluster().clone();
    let mut resplits = 0u64;
    let mut moved = 0u64;
    let start = Instant::now();
    for (k, chunk) in trace.chunks(wave).enumerate() {
        let tickets: Vec<_> = chunk.iter().map(|&fp| fe.submit(fp)).collect();
        fe.flush().expect("flush");
        for t in tickets {
            t.wait().expect("answer");
        }
        // Tune every other wave: the drain-and-scan pass is cheap but
        // not free, and the load signal needs a wave or two to firm up.
        if k % 2 == 0 {
            continue;
        }
        if let Some(opts) = autotune {
            for report in cluster.autotune(opts).expect("autotune") {
                resplits += u64::from(report.resplit);
                moved += report.moved_entries;
            }
        }
    }
    let elapsed = start.elapsed();
    Measured {
        lookups_per_sec: trace.len() as f64 / elapsed.as_secs_f64(),
        elapsed,
        resplits,
        moved,
        final_batch: fe.batch_size(),
    }
}

fn run_static(config: &NodeConfig, trace: &[Fingerprint], wave: usize, batch: usize) -> Measured {
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, config.clone())).expect("spawn");
    let fe = SharedFrontend::new(cluster.clone(), batch, MAX_AGE);
    let m = drive(&fe, trace, wave, None);
    cluster.shutdown().expect("shutdown");
    m
}

fn run_adaptive(config: &NodeConfig, trace: &[Fingerprint], wave: usize) -> Measured {
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, config.clone())).expect("spawn");
    let tuner = TunerConfig {
        min_size: 4,
        max_size: 512,
        min_age: Duration::from_micros(100),
        max_age: MAX_AGE,
        target_delay: Duration::from_millis(10),
        interval: Duration::from_millis(2),
    };
    let fe = SharedFrontend::with_tuner(cluster.clone(), DEFAULT_BATCH, MAX_AGE, tuner);
    let opts = AutotuneOptions {
        imbalance_threshold: 1.3,
        resplit: true,
        autosize_caches: true,
        // Per-shard caches are 4096 / 4 = 1024 entries.
        sizer: SizerConfig {
            min_capacity: 64,
            step: 128,
            hysteresis: 2.0,
        },
    };
    let m = drive(&fe, trace, wave, Some(opts));
    cluster.shutdown().expect("shutdown");
    m
}

fn main() {
    let quick = adaptive_quick();
    let (ops, keyspace, wave, grid, service_delay, frame_overhead) = if quick {
        (
            900usize,
            600u64,
            150usize,
            vec![4usize, 64],
            Duration::from_micros(20),
            Duration::from_micros(100),
        )
    } else {
        (
            9_000usize,
            3_000u64,
            250usize,
            vec![4usize, 16, 64, 256],
            Duration::from_micros(20),
            Duration::from_micros(150),
        )
    };
    banner(
        "Extension — self-tuning under skew: adaptive batching + autotune vs static configs",
        "one closed loop (batch tuner, hot-range re-split, cache autosizing) matches \
         hand-tuned static configs on uniform traffic and beats them under Zipf skew, \
         where no static batch size can fix a hot shard",
    );
    let config = node_config(service_delay, frame_overhead);
    println!(
        "mode: {}, 1 node x {SHARDS} shards, {ops} ops/trace over {keyspace} keys, \
         waves of {wave}, {} µs/fingerprint + {} µs/frame simulated device time\n",
        if quick { "quick (CI smoke)" } else { "full" },
        service_delay.as_micros(),
        frame_overhead.as_micros()
    );

    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for spec in traces(ops, keyspace, 42) {
        let trace = spec.fingerprints();
        println!("trace {:>14}:", spec.name);
        let mut best_static = f64::MIN;
        let mut default_static = 0.0f64;
        for &batch in &grid {
            let m = run_static(&config, &trace, wave, batch);
            println!(
                "  static batch {batch:>4}: {:>9.0} lookups/s",
                m.lookups_per_sec
            );
            if batch == DEFAULT_BATCH || (quick && batch == grid[0]) {
                default_static = m.lookups_per_sec;
            }
            best_static = best_static.max(m.lookups_per_sec);
            rows.push(format!(
                "{},static,{batch},{ops},{:.3},{:.0},0,0",
                spec.name,
                m.elapsed.as_secs_f64() * 1e3,
                m.lookups_per_sec
            ));
        }
        let m = run_adaptive(&config, &trace, wave);
        println!(
            "  adaptive        : {:>9.0} lookups/s  ({} re-splits, {} entries re-homed, \
             batch limit {} -> {})",
            m.lookups_per_sec, m.resplits, m.moved, DEFAULT_BATCH, m.final_batch
        );
        rows.push(format!(
            "{},adaptive,{},{ops},{:.3},{:.0},{},{}",
            spec.name,
            m.final_batch,
            m.elapsed.as_secs_f64() * 1e3,
            m.lookups_per_sec,
            m.resplits,
            m.moved
        ));
        summary.push((
            spec.name,
            m.lookups_per_sec,
            best_static,
            default_static,
            m.resplits,
            m.moved,
        ));
    }

    println!("\nchecks:");
    for &(name, adaptive, best, default, _, _) in &summary {
        let vs_best = adaptive / best;
        let vs_default = adaptive / default;
        if name == "uniform" {
            println!(
                "  {name:>14}: adaptive/default = {vs_default:.2}x (target ≥ 0.95x), \
                 adaptive/best-static = {vs_best:.2}x"
            );
        } else {
            println!("  {name:>14}: adaptive/best-static = {vs_best:.2}x (target ≥ 0.9x)");
        }
    }

    write_csv(
        if quick {
            "ext_adaptive_quick"
        } else {
            "ext_adaptive"
        },
        "trace,variant,batch_size,ops,elapsed_ms,lookups_per_sec,resplits,moved_entries",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_adaptive.json (full-run record)");
        return;
    }
    let entries: Vec<String> = summary
        .iter()
        .map(|(name, adaptive, best, default, resplits, moved)| {
            format!(
                "    {{\"trace\": \"{name}\", \"adaptive_lookups_per_sec\": {adaptive:.0}, \
                 \"best_static_lookups_per_sec\": {best:.0}, \
                 \"default_static_lookups_per_sec\": {default:.0}, \
                 \"adaptive_vs_best_static\": {:.3}, \"adaptive_vs_default\": {:.3}, \
                 \"resplits\": {resplits}, \"moved_entries\": {moved}}}",
                adaptive / best,
                adaptive / default
            )
        })
        .collect();
    write_bench_json(
        "adaptive",
        &format!(
            "{{\n  \"bench\": \"ext_adaptive\",\n  \"quick\": {quick},\n  \"nodes\": 1,\n  \
             \"shards\": {SHARDS},\n  \"ops_per_trace\": {ops},\n  \"keyspace\": {keyspace},\n  \
             \"wave\": {wave},\n  \"service_delay_us\": {},\n  \"frame_overhead_us\": {},\n  \
             \"static_grid\": {grid:?},\n  \"default_batch\": {DEFAULT_BATCH},\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            service_delay.as_micros(),
            frame_overhead.as_micros(),
            entries.join(",\n")
        ),
    );
}
