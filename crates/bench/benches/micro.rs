//! Criterion micro-benchmarks for the substrate hot paths: hashing,
//! bloom filters, caches, the cuckoo table, chunking, the flash store,
//! ring routing, and wire encode/decode.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use shhc_baseline::CuckooTable;
use shhc_bloom::BloomFilter;
use shhc_cache::{Cache, LruCache};
use shhc_chunking::{Chunker, GearChunker, RabinChunker};
use shhc_flash::{FlashConfig, FlashStore};
use shhc_hash::{fnv1a64, xxh64, Sha1};
use shhc_net::{decode, encode, encode_into, Frame};
use shhc_ring::{ConsistentHashRing, Partitioner};
use shhc_types::{Fingerprint, StreamId};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    let data_8k = vec![0xA5u8; 8192];
    group.throughput(Throughput::Bytes(8192));
    group.bench_function("sha1_8k", |b| {
        b.iter(|| Sha1::digest(black_box(&data_8k)));
    });
    group.bench_function("xxh64_8k", |b| {
        b.iter(|| xxh64(black_box(&data_8k), 0));
    });
    group.bench_function("fnv1a_8k", |b| {
        b.iter(|| fnv1a64(black_box(&data_8k)));
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    let mut bloom = BloomFilter::with_rate(1_000_000, 0.01);
    for i in 0..500_000u64 {
        bloom.insert(&i.to_le_bytes());
    }
    let mut i = 0u64;
    group.bench_function("insert", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            bloom.insert(&i.to_le_bytes());
        });
    });
    group.bench_function("query_hit", |b| {
        b.iter(|| bloom.contains(black_box(&42u64.to_le_bytes())));
    });
    group.bench_function("query_miss", |b| {
        b.iter(|| bloom.contains(black_box(&0xdead_beef_0000u64.to_le_bytes())));
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    let mut cache: LruCache<u64, u64> = LruCache::new(100_000);
    for i in 0..100_000u64 {
        cache.insert(i, i);
    }
    let mut i = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            cache.get(black_box(&i)).copied()
        });
    });
    let mut j = 100_000u64;
    group.bench_function("insert_evict", |b| {
        b.iter(|| {
            j += 1;
            cache.insert(j, j)
        });
    });
    group.finish();
}

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo");
    let mut table = CuckooTable::with_capacity(1_000_000);
    for i in 0..800_000u64 {
        table.insert(Fingerprint::from_u64(i), i);
    }
    let mut i = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 800_000;
            table.get(black_box(Fingerprint::from_u64(i)))
        });
    });
    group.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunking");
    let mut rng = StdRng::seed_from_u64(1);
    let mut data = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut data);
    group.throughput(Throughput::Bytes(data.len() as u64));
    let rabin = RabinChunker::new(2048, 8192, 65536);
    group.bench_function("rabin_1MiB", |b| {
        b.iter(|| rabin.chunk(black_box(&data)).count());
    });
    let gear = GearChunker::new(2048, 8192, 65536);
    group.bench_function("gear_1MiB", |b| {
        b.iter(|| gear.chunk(black_box(&data)).count());
    });
    group.finish();
}

fn bench_flash_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash_store");
    let mut store = FlashStore::new(FlashConfig::medium_test()).expect("config");
    for i in 0..50_000u64 {
        store.put(Fingerprint::from_u64(i), i).expect("put");
    }
    store.flush().expect("flush");
    let mut i = 0u64;
    group.bench_function("get_cold", |b| {
        b.iter(|| {
            i = (i + 1) % 50_000;
            store.get(black_box(Fingerprint::from_u64(i))).expect("get")
        });
    });
    let mut j = 0u64;
    group.bench_function("put_buffered", |b| {
        b.iter(|| {
            // Steady-state put path: overwrite within a bounded key space
            // so the simulated device never fills, however many samples
            // Criterion takes.
            j += 1;
            let key = 1_000_000 + (j % 20_000);
            store.put(Fingerprint::from_u64(key), j).expect("put")
        });
    });
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring");
    let ring = ConsistentHashRing::with_nodes(16, 64);
    let mut rng = StdRng::seed_from_u64(2);
    group.bench_function("route", |b| {
        b.iter(|| ring.route(black_box(rng.gen::<u64>())));
    });
    group.bench_function("replicas_3", |b| {
        b.iter(|| ring.replicas(black_box(rng.gen::<u64>()), 3));
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let frame = Frame::LookupInsertReq {
        correlation: 1,
        stream: StreamId::new(0),
        fingerprints: (0..128).map(Fingerprint::from_u64).collect(),
    };
    let bytes = encode(&frame);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_128", |b| {
        b.iter(|| encode(black_box(&frame)));
    });
    group.bench_function("encode_into_128", |b| {
        let mut buf = bytes::BytesMut::with_capacity(bytes.len());
        b.iter(|| encode_into(black_box(&frame), &mut buf));
    });
    group.bench_function("decode_128", |b| {
        b.iter(|| decode(black_box(&bytes)).expect("decode"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hashes, bench_bloom, bench_cache, bench_cuckoo, bench_chunking, bench_flash_store, bench_ring, bench_wire
}
criterion_main!(benches);
