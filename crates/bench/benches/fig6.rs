//! Figure 6 — "Hash value storage distribution" (load balance).
//!
//! The paper stores the mixed workloads on a 4-node cluster and reports
//! the share of hash-table entries per node: "roughly 25%" each.

use shhc::{SimCluster, SimClusterConfig};
use shhc_bench::{banner, scale, write_csv};
use shhc_workload::{mix, presets};

fn main() {
    let scale = scale();
    banner(
        "Figure 6 — per-node share of stored fingerprints (4 nodes)",
        "each of the 4 nodes stores roughly 25% of all hash values",
    );
    println!("scale: 1/{scale} of the four mixed Table I workloads\n");

    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(scale).generate())
        .collect();
    let stream = mix(&traces, 7);
    let half = stream.len() / 2;
    let clients = vec![stream[..half].to_vec(), stream[half..].to_vec()];

    let mut sim = SimCluster::new(SimClusterConfig::paper_scale(4, 128)).expect("config");
    let report = sim.run(&clients).expect("run");

    let total: u64 = report.per_node_entries.iter().sum();
    println!("total stored fingerprints: {total}\n");
    let mut rows = Vec::new();
    for (i, (&entries, share)) in report
        .per_node_entries
        .iter()
        .zip(report.entry_shares())
        .enumerate()
    {
        let bar = "█".repeat((share * 120.0).round() as usize);
        println!(
            "node-{i}: {:>10} entries  {:>5.1}%  {bar}",
            entries,
            share * 100.0
        );
        rows.push(format!("{i},{entries},{:.4}", share));
    }

    let shares = report.entry_shares();
    let max = shares.iter().cloned().fold(0.0, f64::max);
    let min = shares.iter().cloned().fold(1.0, f64::min);
    println!("\nchecks:");
    println!(
        "  share range: {:.1}% – {:.1}% (paper: all ≈25%)",
        min * 100.0,
        max * 100.0
    );
    println!("  max/min imbalance: {:.2}x", max / min.max(1e-12));

    write_csv("fig6", "node,entries,share", &rows);
}
