//! Extension F — the hybrid RAM/SSD split: RAM cache size and policy vs
//! hit ratio and effective lookup cost on one node. This is the design
//! dial behind Figure 3's "RAM serves as the cache for SSDs".

use shhc_bench::{banner, scale, write_csv};
use shhc_node::{CachePolicy, HybridHashNode, NodeConfig};
use shhc_types::NodeId;
use shhc_workload::presets;

fn main() {
    let scale = (scale() * 2).max(1);
    banner(
        "Extension F — RAM cache size & policy vs hit ratio and lookup cost",
        "the RAM tier absorbs repeat queries and hides SSD latency (paper Fig. 3/4)",
    );
    let trace = presets::mail_server().scaled(scale).generate();
    println!(
        "workload: Mail Server at 1/{scale} — {} fingerprints, 85% redundant\n",
        trace.len()
    );

    let mut rows = Vec::new();
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "capacity", "policy", "RAM hit%", "SSD hit%", "µs/lookup", "SSD reads"
    );
    for capacity in [1_024usize, 8_192, 65_536, 524_288] {
        for policy in [CachePolicy::Lru, CachePolicy::Slru, CachePolicy::TwoQ] {
            let config = NodeConfig {
                cache_capacity: capacity,
                cache_policy: policy,
                ..NodeConfig::default_node()
            };
            let mut node = HybridHashNode::new(NodeId::new(0), config).expect("config");
            for fp in &trace.fingerprints {
                node.lookup_insert(*fp).expect("lookup");
            }
            let stats = node.stats();
            let device = node.device_stats();
            let dups = (stats.ram_hits + stats.ssd_hits) as f64;
            let ram_pct = stats.ram_hits as f64 / dups * 100.0;
            let ssd_pct = stats.ssd_hits as f64 / dups * 100.0;
            let per_op = stats.busy.as_micros_f64() / stats.ops() as f64;
            println!(
                "{capacity:>10} {policy:>8?} {ram_pct:>9.1}% {ssd_pct:>9.1}% {per_op:>12.2} {:>12}",
                device.reads
            );
            rows.push(format!(
                "{capacity},{policy:?},{ram_pct:.2},{ssd_pct:.2},{per_op:.2},{}",
                device.reads
            ));
        }
    }

    println!("\nreading: hit ratio climbs with capacity until the working set");
    println!("fits; every point of RAM hit ratio converts an SSD read (25 µs)");
    println!("into a sub-µs RAM probe. Scan-resistant policies (SLRU/2Q) help");
    println!("when cold sequential inserts would otherwise flush the hot set.");

    write_csv(
        "ext_cache_sweep",
        "capacity,policy,ram_hit_pct,ssd_hit_pct,us_per_lookup,ssd_reads",
        &rows,
    );
}
