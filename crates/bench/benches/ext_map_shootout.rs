//! Extension — index-backend shootout: single-writer vs concurrent maps.
//!
//! The node's mirror index (PR 6) can run on three backends: the
//! single-mutex baseline, a striped-`RwLock` map, and an epoch-validated
//! COW snapshot map. This harness runs the **identical** seeded
//! operation mix against every backend under the node's execution model
//! and sweeps the reader count:
//!
//! - **baseline** (`readers = 0`) — the paper's single-writer node: one
//!   thread serves every operation, reads serialized behind writes,
//! - **pooled** (`readers = R`) — one writer thread applies all
//!   mutations while `R` reader threads split the gets, exactly how the
//!   cluster server's reader pool drives a concurrent mirror.
//!
//! As in the other wall-clock harnesses, per-operation service time
//! (CPU + RAM probe) is a **true sleep**, charged per 64-op frame — so
//! reader concurrency is visible in wall-clock terms on any host, even
//! a single-core CI box where CPU-bound threads cannot overlap. Each
//! cell is also re-run with zero service time ("raw" rows,
//! `service_ns = 0`): pure map cost under the same thread population,
//! where multi-core hosts show the backends' lock behavior directly.
//! Every row reports the backend's contention counters (`lock_waits`,
//! `read_retries`) so a slow cell is attributable, not a mystery.
//!
//! Two mixes:
//! - read-dominant (95 % gets) — the dedup-query traffic a reader pool
//!   exists for; the best concurrent backend must beat the single-writer
//!   baseline ≥ 2× at 8 readers,
//! - write-heavy (50 % gets) — where stripe locking and snapshot
//!   publishes have to prove they cost little (target: ≥ 0.9× the
//!   baseline, i.e. no real regression).
//!
//! Emits `results/ext_map_shootout.csv` plus `BENCH_map_shootout.json`
//! at the workspace root. Set `SHHC_MAP_SHOOTOUT_QUICK=1` for a
//! sub-second CI smoke run.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use shhc_bench::{banner, map_shootout_quick, write_bench_json, write_csv};
use shhc_index::{AnyIndex, BackendKind, Collection, CollectionHandle};
use shhc_types::Fingerprint;
use shhc_workload::{split_op_mix, MapOp, OpMixSpec};

/// Operations per service frame: the batching the node's data plane
/// already does, and the granularity the service sleep is charged at.
const FRAME: usize = 64;

struct Cell {
    backend: BackendKind,
    mix: &'static str,
    readers: usize,
    service: Duration,
    ops: u64,
    elapsed: Duration,
    ops_per_sec: f64,
    lock_waits: u64,
    read_retries: u64,
}

/// Executes one thread's op stream: per [`FRAME`] ops, sleep the
/// frame's service share, then run the map operations.
fn drive_stream(
    handle: &mut impl CollectionHandle<Key = Fingerprint, Value = u64>,
    stream: &[MapOp],
    per_op: Duration,
) {
    for frame in stream.chunks(FRAME) {
        let service = per_op * frame.len() as u32;
        if !service.is_zero() {
            std::thread::sleep(service);
        }
        for op in frame {
            match op {
                MapOp::Get(fp) => {
                    std::hint::black_box(handle.get(fp));
                }
                MapOp::Insert(fp, value) => {
                    handle.insert(*fp, *value);
                }
                MapOp::Remove(fp) => {
                    handle.remove(fp);
                }
            }
        }
    }
}

/// Runs one (backend, mix, readers, service) cell. `readers = 0` is the
/// single-writer baseline: one thread executes the whole mix in order.
/// `readers = R` is the pooled model: a writer thread drains the
/// serialized mutation stream while `R` reader threads drain their read
/// streams, all released together by a barrier.
fn run_cell(backend: BackendKind, spec: &OpMixSpec, readers: usize, per_op: Duration) -> Cell {
    let index: AnyIndex<Fingerprint, u64> = AnyIndex::new(backend, spec.keyspace as usize);
    let mut prefill_handle = index.pin();
    for (fp, value) in spec.prefill() {
        prefill_handle.insert(fp, value);
    }
    let ops = spec.generate();
    let start;
    if readers == 0 {
        start = Instant::now();
        drive_stream(&mut prefill_handle, &ops, per_op);
    } else {
        let (read_streams, writes) = split_op_mix(&ops, readers);
        let barrier = Barrier::new(readers + 2);
        start = Instant::now();
        std::thread::scope(|scope| {
            for stream in &read_streams {
                let mut handle = index.pin();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    drive_stream(&mut handle, stream, per_op);
                });
            }
            let mut handle = index.pin();
            let barrier = &barrier;
            let writes = &writes;
            scope.spawn(move || {
                barrier.wait();
                drive_stream(&mut handle, writes, per_op);
            });
            barrier.wait();
        });
    }
    let elapsed = start.elapsed();
    let stats = index.stats();
    Cell {
        backend,
        mix: spec.name,
        readers,
        service: per_op,
        ops: ops.len() as u64,
        elapsed,
        ops_per_sec: ops.len() as f64 / elapsed.as_secs_f64(),
        lock_waits: stats.lock_waits,
        read_retries: stats.read_retries,
    }
}

fn main() {
    let quick = map_shootout_quick();
    let (ops, keyspace, per_op, reader_counts) = if quick {
        (
            8_192usize,
            4_096u64,
            Duration::from_micros(1),
            vec![2usize, 4],
        )
    } else {
        (
            262_144usize,
            65_536u64,
            Duration::from_micros(2),
            vec![1, 2, 4, 8, 16],
        )
    };
    banner(
        "Extension — index-backend shootout: single writer vs reader pools",
        "a concurrent mirror backend turns reader threads into real read \
         throughput the paper's single-writer node serializes away, and on a \
         write-heavy mix costs nothing measurable",
    );
    println!(
        "mode: {}, {ops} ops per cell, keyspace {keyspace}, {} µs/op simulated \
         service time (charged per {FRAME}-op frame), reader sweep {reader_counts:?}\n",
        if quick { "quick (CI smoke)" } else { "full" },
        per_op.as_micros(),
    );
    let mixes = [
        OpMixSpec::read_dominant(ops, keyspace, 42),
        OpMixSpec::write_heavy(ops, keyspace, 42),
    ];
    println!(
        "{:>14} {:>8} {:>8} {:>11} {:>14} {:>11} {:>11} {:>12}",
        "mix",
        "backend",
        "readers",
        "service_us",
        "ops/sec",
        "vs 1-thread",
        "lock_waits",
        "read_retries"
    );
    let mut rows = Vec::new();
    let mut cells: Vec<(Cell, f64)> = Vec::new();
    for spec in &mixes {
        for service in [per_op, Duration::ZERO] {
            // The single-writer baseline of this (mix, service) block:
            // every speedup is measured against it.
            let baseline = run_cell(BackendKind::Single, spec, 0, service);
            let base_ops_per_sec = baseline.ops_per_sec;
            let mut report = |cell: Cell| {
                let speedup = cell.ops_per_sec / base_ops_per_sec;
                println!(
                    "{:>14} {:>8} {:>8} {:>11} {:>14.0} {:>10.2}x {:>11} {:>12}",
                    cell.mix,
                    cell.backend.to_string(),
                    cell.readers,
                    cell.service.as_micros(),
                    cell.ops_per_sec,
                    speedup,
                    cell.lock_waits,
                    cell.read_retries
                );
                rows.push(format!(
                    "{},{},{},{},{},{:.3},{:.0},{speedup:.3},{},{}",
                    cell.mix,
                    cell.backend,
                    cell.readers,
                    cell.service.as_nanos(),
                    cell.ops,
                    cell.elapsed.as_secs_f64() * 1e3,
                    cell.ops_per_sec,
                    cell.lock_waits,
                    cell.read_retries
                ));
                cells.push((cell, speedup));
            };
            report(baseline);
            for &readers in &reader_counts {
                for backend in BackendKind::ALL {
                    report(run_cell(backend, spec, readers, service));
                }
            }
            println!();
        }
    }

    let best_at = |mix: &str, readers: usize| {
        cells
            .iter()
            .filter(|(c, _)| {
                c.mix == mix
                    && c.readers == readers
                    && c.backend.concurrent()
                    && !c.service.is_zero()
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    };
    let deep = reader_counts
        .iter()
        .copied()
        .filter(|&r| r <= 8)
        .max()
        .unwrap_or(1);
    println!("checks (simulated-service rows):");
    if let Some((cell, speedup)) = best_at("read_dominant", deep) {
        println!(
            "  best concurrent backend, read-dominant @ {} readers: {} at {speedup:.2}x \
             (target: ≥ 2x the single-writer baseline)",
            cell.readers, cell.backend
        );
    }
    if let Some((cell, speedup)) = best_at("write_heavy", deep) {
        println!(
            "  best concurrent backend, write-heavy @ {} readers: {} at {speedup:.2}x \
             (target: ≥ 0.9x — no regression when half the stream mutates)",
            cell.readers, cell.backend
        );
    }

    // Quick (smoke) runs write under a distinct name so they can never
    // clobber the committed full-run artifacts.
    write_csv(
        if quick {
            "ext_map_shootout_quick"
        } else {
            "ext_map_shootout"
        },
        "mix,backend,readers,service_ns,ops,elapsed_ms,ops_per_sec,speedup_vs_single_writer,lock_waits,read_retries",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_map_shootout.json (full-run record)");
        return;
    }
    let entries: Vec<String> = cells
        .iter()
        .map(|(c, speedup)| {
            format!(
                "    {{\"mix\": \"{}\", \"backend\": \"{}\", \"readers\": {}, \
                 \"service_ns\": {}, \"ops_per_sec\": {:.0}, \
                 \"speedup_vs_single_writer\": {speedup:.3}, \
                 \"lock_waits\": {}, \"read_retries\": {}}}",
                c.mix,
                c.backend,
                c.readers,
                c.service.as_nanos(),
                c.ops_per_sec,
                c.lock_waits,
                c.read_retries
            )
        })
        .collect();
    write_bench_json(
        "map_shootout",
        &format!(
            "{{\n  \"bench\": \"ext_map_shootout\",\n  \"quick\": {quick},\n  \
             \"ops_per_cell\": {ops},\n  \"keyspace\": {keyspace},\n  \
             \"service_ns_per_op\": {},\n  \"frame_ops\": {FRAME},\n  \
             \"reader_sweep\": {reader_counts:?},\n  \"results\": [\n{}\n  ]\n}}\n",
            per_op.as_nanos(),
            entries.join(",\n")
        ),
    );
}
