//! Extension — wall-clock scaling of the threaded cluster data plane.
//!
//! Unlike the virtual-time figures, this harness measures *real* elapsed
//! time: it spawns actual node server threads whose per-fingerprint
//! service time is a wall-clock sleep (`NodeConfig::service_delay`,
//! standing in for device latency), then drives identical lookup-insert
//! streams through both data planes:
//!
//! - `sequential` — the pre-pipeline baseline: one blocking exchange per
//!   replica group at a time, so a batch pays the *sum* of per-node
//!   service times,
//! - `pipelined` — the scatter-gather plane: all groups in flight at
//!   once, so a batch pays ≈ the *max*.
//!
//! Expected shape: sequential throughput is flat in node count (the
//! client serializes the cluster), pipelined throughput grows near
//! linearly — the paper's Figure 5 scaling claim, now in wall-clock
//! terms. Emits `results/ext_wallclock_scaling.csv` plus the
//! machine-readable `BENCH_wallclock_scaling.json` at the workspace
//! root. Set `SHHC_WALLCLOCK_QUICK=1` for a sub-second CI smoke run.

use std::time::{Duration, Instant};

use shhc::{ClusterConfig, DataPlane, NodeConfig, ShhcCluster};
use shhc_bench::{banner, wallclock_quick, write_bench_json, write_csv};
use shhc_flash::FlashConfig;
use shhc_types::Fingerprint;
use shhc_workload::spread_batches;

struct Measured {
    lookups: u64,
    elapsed: Duration,
    lookups_per_sec: f64,
}

/// Drives one cluster: an ingest pass (all new) followed by a dedup pass
/// (all duplicates) over the same batches — the sustained lookup-insert
/// stream a backup window produces.
fn drive(
    nodes: u32,
    plane: DataPlane,
    stream: &[Vec<Fingerprint>],
    service_delay: Duration,
) -> Measured {
    let mut node_config = NodeConfig::small_test();
    node_config.flash = FlashConfig::medium_test();
    node_config.cache_capacity = 16_384;
    node_config.bloom_expected = 500_000;
    node_config.service_delay = service_delay;
    let cluster = ShhcCluster::spawn(ClusterConfig::new(nodes, node_config).with_data_plane(plane))
        .expect("spawn cluster");
    let start = Instant::now();
    for batch in stream {
        let exists = cluster.lookup_insert_batch(batch).expect("lookup");
        debug_assert!(exists.iter().all(|e| !e), "ingest pass must be all-new");
    }
    for batch in stream {
        let exists = cluster.lookup_insert_batch(batch).expect("lookup");
        assert!(exists.iter().all(|e| *e), "dedup pass must be all-hits");
    }
    let elapsed = start.elapsed();
    cluster.shutdown().expect("shutdown");
    let lookups = 2 * stream.iter().map(|b| b.len() as u64).sum::<u64>();
    Measured {
        lookups,
        elapsed,
        lookups_per_sec: lookups as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let quick = wallclock_quick();
    let (node_counts, batches, batch_size, delay) = if quick {
        (
            vec![1u32, 2, 4],
            3usize,
            64usize,
            Duration::from_micros(200),
        )
    } else {
        (vec![1, 2, 4, 8], 12, 512, Duration::from_micros(100))
    };
    banner(
        "Extension — wall-clock scaling: pipelined vs sequential data plane",
        "batch latency tracks max, not sum, of per-node service times; \
         pipelined throughput scales with node count",
    );
    println!(
        "mode: {}, {batches} batches x {batch_size} fingerprints x 2 passes, \
         {} µs simulated device latency per fingerprint\n",
        if quick { "quick (CI smoke)" } else { "full" },
        delay.as_micros()
    );
    let stream = spread_batches(batches, batch_size);

    println!(
        "{:>6} {:>16} {:>16} {:>9}   (sustained lookups/second)",
        "nodes", "sequential", "pipelined", "speedup"
    );
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for &nodes in &node_counts {
        let seq = drive(nodes, DataPlane::Sequential, &stream, delay);
        let pipe = drive(nodes, DataPlane::Pipelined, &stream, delay);
        let speedup = pipe.lookups_per_sec / seq.lookups_per_sec;
        println!(
            "{nodes:>6} {:>16.0} {:>16.0} {speedup:>8.2}x",
            seq.lookups_per_sec, pipe.lookups_per_sec
        );
        for (name, m) in [("sequential", &seq), ("pipelined", &pipe)] {
            rows.push(format!(
                "{nodes},{name},{batches},{batch_size},{},{},{:.3},{:.0}",
                delay.as_micros(),
                m.lookups,
                m.elapsed.as_secs_f64() * 1e3,
                m.lookups_per_sec
            ));
        }
        summary.push((nodes, seq.lookups_per_sec, pipe.lookups_per_sec, speedup));
    }

    let at = |n: u32| summary.iter().find(|s| s.0 == n);
    println!("\nchecks:");
    if let Some(&(_, _, _, speedup)) = at(4) {
        println!("  pipelined vs sequential at 4 nodes: {speedup:.2}x (target: ≥ 2x)");
    }
    if let (Some(&(_, _, p1, _)), Some(&(_, _, p4, _))) = (at(1), at(4)) {
        println!(
            "  pipelined scaling 1→4 nodes:        {:.2}x (paper: near-linear)",
            p4 / p1
        );
    }

    // Quick (smoke) runs write under a distinct name so they can never
    // clobber the committed full-run artifacts.
    write_csv(
        if quick {
            "ext_wallclock_scaling_quick"
        } else {
            "ext_wallclock_scaling"
        },
        "nodes,data_plane,batches,batch_size,service_delay_us,total_lookups,elapsed_ms,lookups_per_sec",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_wallclock_scaling.json (full-run record)");
        return;
    }
    let entries: Vec<String> = summary
        .iter()
        .map(|(n, s, p, x)| {
            format!(
                "    {{\"nodes\": {n}, \"sequential_lookups_per_sec\": {s:.0}, \
                 \"pipelined_lookups_per_sec\": {p:.0}, \"speedup\": {x:.3}}}"
            )
        })
        .collect();
    write_bench_json(
        "wallclock_scaling",
        &format!(
            "{{\n  \"bench\": \"ext_wallclock_scaling\",\n  \"quick\": {quick},\n  \
             \"batches\": {batches},\n  \"batch_size\": {batch_size},\n  \
             \"service_delay_us\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            delay.as_micros(),
            entries.join(",\n")
        ),
    );
}
