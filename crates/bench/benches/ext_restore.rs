//! Extension — restore at scale: the pipelined, batched, cache-polite
//! read path against the sequential per-chunk baseline.
//!
//! Backup systems are judged on restore day. The sequential baseline
//! replays a manifest one chunk at a time — one advisory fingerprint
//! locate round-trip per chunk (paying the per-frame overhead every
//! time), one store read per chunk, nothing overlapped. The pipelined
//! path walks the manifest a window ahead: each batch's fingerprints go
//! to the cluster as **one** [`Admission::Bypass`] query, its chunks
//! come back as **one** `get_many`, and a prefetcher thread fetches
//! batch N+1 while batch N is verified and assembled.
//!
//! Three measurements, all on clusters with realistic per-frame and
//! per-op service time turned up:
//! 1. K-client restore throughput, sequential vs pipelined (K swept),
//!    plus a window-depth sweep at the largest K.
//! 2. A mixed row: pipelined restores running against concurrent ingest
//!    sessions on the same service (both throughputs reported).
//! 3. Scan resistance: the ingest hot-set RAM hit rate with a full
//!    Bypass restore churning concurrently, against the undisturbed
//!    value.
//!
//! Expected: pipelined ≥ 2× sequential at the largest K, and the
//! concurrent-restore hit rate ≥ 0.9× the undisturbed one. Emits
//! `results/ext_restore.csv` plus `BENCH_restore.json` at the workspace
//! root. Set `SHHC_RESTORE_QUICK=1` for a CI smoke run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use shhc::prelude::*;
use shhc::{BackendKind, NodeConfig, RestoreConfig, ShhcCluster};
use shhc_bench::{banner, restore_quick, write_bench_json, write_csv};
use shhc_workload::RestoreSpec;

struct Scenario {
    nodes: u32,
    client_counts: Vec<usize>,
    /// Window-depth sweep at the largest client count.
    window_sweep: Vec<usize>,
    chunks_per_client: usize,
    chunk_size: usize,
    passes: usize,
    batch: usize,
    window: usize,
    /// Per-frame node service overhead — what batching amortizes.
    batch_overhead: Duration,
    /// Per-fingerprint node service time.
    service_delay: Duration,
    /// Ingest sessions in the mixed row.
    mixed_ingest_sessions: usize,
    /// Hot-set re-ingest rounds in the scan-resistance measurement.
    hitrate_rounds: usize,
}

type Svc = BackupService<FixedChunker, MemChunkStore>;

fn spawn_service(scenario: &Scenario) -> Svc {
    let mut node_config = NodeConfig::small_test();
    node_config.flash = shhc_flash::FlashConfig::medium_test();
    node_config.cache_capacity = 16_384;
    node_config.bloom_expected = 500_000;
    node_config.batch_overhead = scenario.batch_overhead;
    node_config.service_delay = scenario.service_delay;
    let cluster =
        ShhcCluster::spawn(ClusterConfig::new(scenario.nodes, node_config)).expect("spawn cluster");
    BackupService::new(
        cluster,
        FixedChunker::new(scenario.chunk_size),
        MemChunkStore::new(8 << 20),
        64,
    )
}

struct Measured {
    total_bytes: u64,
    elapsed: Duration,
    locate_coverage: f64,
    degraded: bool,
}

impl Measured {
    fn mbps(&self) -> f64 {
        self.total_bytes as f64 / 1e6 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// K clients restore their manifests `passes` times, concurrently.
/// Every pass is verified byte-exact against the client's payload.
fn drive_restores(
    svc: &Svc,
    manifests: &[BackupManifest],
    payloads: &[Vec<u8>],
    passes: usize,
    pipelined: bool,
    config: RestoreConfig,
) -> Measured {
    let barrier = Arc::new(Barrier::new(manifests.len()));
    let (bytes, coverage_sum, degraded, elapsed) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (manifest, payload) in manifests.iter().zip(payloads) {
            let svc = svc.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                barrier.wait();
                let start = Instant::now();
                let mut bytes = 0u64;
                let mut coverage = 0.0f64;
                let mut degraded = false;
                for _ in 0..passes {
                    let report = if pipelined {
                        svc.restore_pipelined_with(manifest, config)
                    } else {
                        svc.restore_with(manifest, config)
                    }
                    .expect("restore");
                    assert_eq!(report.data, *payload, "restore must be byte-exact");
                    bytes += report.bytes;
                    coverage += report.locate_coverage();
                    degraded |= report.degraded;
                }
                (bytes, coverage / passes as f64, degraded, start.elapsed())
            }));
        }
        handles
            .into_iter()
            .fold((0u64, 0.0f64, false, Duration::ZERO), |(b, c, d, e), h| {
                let (bytes, coverage, degraded, elapsed) = h.join().expect("restorer");
                (b + bytes, c + coverage, d | degraded, e.max(elapsed))
            })
    });
    Measured {
        total_bytes: bytes,
        elapsed,
        locate_coverage: coverage_sum / manifests.len() as f64,
        degraded,
    }
}

/// Backs up the spec's payloads, returning (manifests, payloads).
fn setup_backups(svc: &Svc, spec: &RestoreSpec) -> (Vec<BackupManifest>, Vec<Vec<u8>>) {
    let payloads = spec.client_payloads();
    let manifests = payloads
        .iter()
        .enumerate()
        .map(|(c, data)| {
            svc.backup(StreamId::new(c as u32), data)
                .expect("backup")
                .manifest
        })
        .collect();
    (manifests, payloads)
}

/// The scan-resistance measurement: the ingest hot-set RAM hit ratio
/// over `rounds` re-ingests, optionally with a full pipelined (Bypass)
/// restore of a cache-busting cold archive looping concurrently.
fn hot_set_hit_ratio(scenario: &Scenario, concurrent_restore: bool) -> f64 {
    // Node shape pinned to the single backend: that is where the node
    // cache serves queries (reader-pool nodes answer from mirrors).
    // Service time stays zero here — this measures cache state, not
    // wall clock.
    let mut node_config = NodeConfig::small_test();
    node_config.cache_capacity = 256;
    node_config.backend = BackendKind::Single;
    node_config.readers = 0;
    let cluster =
        ShhcCluster::spawn(ClusterConfig::new(scenario.nodes, node_config)).expect("spawn cluster");
    let svc: Svc = BackupService::new(
        cluster,
        FixedChunker::new(scenario.chunk_size),
        MemChunkStore::new(8 << 20),
        64,
    );

    let cold = RestoreSpec::open_loop(1, 1024)
        .with_chunk_size(scenario.chunk_size)
        .with_redundancy(0.0)
        .client_data(0);
    let hot = RestoreSpec::open_loop(1, 64)
        .with_chunk_size(scenario.chunk_size)
        .with_redundancy(0.0)
        .with_seed(0x401)
        .client_data(0);
    let cold_manifest = svc
        .backup(StreamId::new(1), &cold)
        .expect("backup")
        .manifest;
    svc.backup(StreamId::new(2), &hot).expect("backup");

    let stop = Arc::new(AtomicBool::new(false));
    let ratio = std::thread::scope(|scope| {
        if concurrent_restore {
            let svc = svc.clone();
            let stop = Arc::clone(&stop);
            let cold = &cold;
            let cold_manifest = &cold_manifest;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let restored = svc.restore_pipelined(cold_manifest).expect("restore");
                    assert_eq!(&restored, cold);
                }
            });
        }
        for round in 0..scenario.hitrate_rounds {
            svc.backup(StreamId::new(10 + round as u32), &hot)
                .expect("backup");
        }
        stop.store(true, Ordering::Relaxed);
        let stats = svc.cluster().stats().expect("stats");
        let (ram, ssd) = stats.nodes.iter().fold((0u64, 0u64), |(r, s), n| {
            (r + n.stats.ram_hits, s + n.stats.ssd_hits)
        });
        ram as f64 / (ram + ssd).max(1) as f64
    });
    svc.cluster().clone().shutdown().expect("shutdown");
    ratio
}

fn main() {
    let quick = restore_quick();
    let scenario = if quick {
        Scenario {
            nodes: 2,
            client_counts: vec![2],
            window_sweep: vec![2],
            chunks_per_client: 48,
            chunk_size: 1024,
            passes: 1,
            batch: 16,
            window: 2,
            batch_overhead: Duration::from_micros(40),
            service_delay: Duration::from_nanos(100),
            mixed_ingest_sessions: 1,
            hitrate_rounds: 2,
        }
    } else {
        Scenario {
            nodes: 2,
            client_counts: vec![1, 4, 8],
            window_sweep: vec![1, 2, 4, 8],
            chunks_per_client: 512,
            chunk_size: 4096,
            passes: 3,
            batch: 64,
            window: 4,
            batch_overhead: Duration::from_micros(120),
            service_delay: Duration::from_nanos(300),
            mixed_ingest_sessions: 2,
            hitrate_rounds: 5,
        }
    };
    banner(
        "Extension — restore at scale: pipelined read path with manifest-driven prefetch",
        "batching the locate round-trips and overlapping fetch with assembly restores ≥2× \
         faster than the per-chunk sequential replay, without flushing the ingest cache \
         working set (Bypass admission)",
    );
    println!(
        "mode: {}, {} nodes, {} chunks × {} B per client, {} passes, batch {}, window {}, \
         {:?} per frame + {:?} per op\n",
        if quick { "quick (CI smoke)" } else { "full" },
        scenario.nodes,
        scenario.chunks_per_client,
        scenario.chunk_size,
        scenario.passes,
        scenario.batch,
        scenario.window,
        scenario.batch_overhead,
        scenario.service_delay,
    );

    let config = RestoreConfig::new(scenario.batch, scenario.window);
    let mut rows: Vec<String> = Vec::new();
    let mut results_json: Vec<String> = Vec::new();
    println!(
        "{:>22} {:>8} {:>7} {:>7} {:>9} {:>11} {:>9} {:>8}",
        "mode", "clients", "batch", "window", "MB", "elapsed_ms", "MB/s", "locate"
    );
    let mut record = |mode: &str, clients: usize, cfg: RestoreConfig, m: &Measured| {
        println!(
            "{mode:>22} {clients:>8} {:>7} {:>7} {:>9.1} {:>11.1} {:>9.1} {:>7.0}%",
            cfg.batch,
            cfg.window,
            m.total_bytes as f64 / 1e6,
            m.elapsed.as_secs_f64() * 1e3,
            m.mbps(),
            m.locate_coverage * 100.0,
        );
        rows.push(format!(
            "{mode},{clients},{},{},{},{:.3},{:.2},{:.4},{}",
            cfg.batch,
            cfg.window,
            m.total_bytes,
            m.elapsed.as_secs_f64() * 1e3,
            m.mbps(),
            m.locate_coverage,
            m.degraded,
        ));
        results_json.push(format!(
            "    {{\"mode\": \"{mode}\", \"clients\": {clients}, \"batch\": {}, \
             \"window\": {}, \"total_bytes\": {}, \"elapsed_ms\": {:.3}, \
             \"mbps\": {:.2}, \"locate_coverage\": {:.4}}}",
            cfg.batch,
            cfg.window,
            m.total_bytes,
            m.elapsed.as_secs_f64() * 1e3,
            m.mbps(),
            m.locate_coverage,
        ));
    };

    // 1. Client-count sweep: sequential vs pipelined on fresh clusters.
    let mut speedup_at_max = 0.0f64;
    let max_clients = scenario.client_counts.iter().copied().max().unwrap_or(1);
    for &clients in &scenario.client_counts {
        let spec = RestoreSpec::open_loop(clients, scenario.chunks_per_client)
            .with_chunk_size(scenario.chunk_size);
        let svc = spawn_service(&scenario);
        let (manifests, payloads) = setup_backups(&svc, &spec);
        let seq = drive_restores(&svc, &manifests, &payloads, scenario.passes, false, config);
        record("sequential", clients, config, &seq);
        let pipe = drive_restores(&svc, &manifests, &payloads, scenario.passes, true, config);
        record("pipelined", clients, config, &pipe);
        if clients == max_clients {
            speedup_at_max = pipe.mbps() / seq.mbps().max(1e-9);
            // Window-depth sweep on the same backed-up service.
            for &window in &scenario.window_sweep {
                if window == scenario.window {
                    continue; // already measured above
                }
                let cfg = RestoreConfig::new(scenario.batch, window);
                let m = drive_restores(&svc, &manifests, &payloads, scenario.passes, true, cfg);
                record("pipelined", clients, cfg, &m);
            }
        }
        svc.cluster().clone().shutdown().expect("shutdown");
    }

    // 2. Mixed row: pipelined restores against live ingest sessions.
    {
        let clients = scenario.client_counts.last().copied().unwrap_or(1);
        let spec = RestoreSpec::open_loop(clients, scenario.chunks_per_client)
            .with_chunk_size(scenario.chunk_size);
        let svc = spawn_service(&scenario);
        let (manifests, payloads) = setup_backups(&svc, &spec);
        let stop = Arc::new(AtomicBool::new(false));
        let (restore_m, ingest_bytes, ingest_elapsed) = std::thread::scope(|scope| {
            let mut ingest_handles = Vec::new();
            for session in 0..scenario.mixed_ingest_sessions {
                let svc = svc.clone();
                let stop = Arc::clone(&stop);
                let ingest_spec = RestoreSpec::open_loop(1, scenario.chunks_per_client / 2)
                    .with_chunk_size(scenario.chunk_size)
                    .with_seed(0xB0B0 + session as u64);
                ingest_handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut bytes = 0u64;
                    let mut round = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let data = ingest_spec
                            .clone()
                            .with_seed(0xB0B0 + session as u64 + u64::from(round) * 131)
                            .client_data(0);
                        svc.backup(StreamId::new(500 + session as u32 * 100 + round), &data)
                            .expect("mixed ingest backup");
                        bytes += data.len() as u64;
                        round += 1;
                    }
                    (bytes, start.elapsed())
                }));
            }
            let m = drive_restores(&svc, &manifests, &payloads, scenario.passes, true, config);
            stop.store(true, Ordering::Relaxed);
            let (bytes, elapsed) =
                ingest_handles
                    .into_iter()
                    .fold((0u64, Duration::ZERO), |(b, e), h| {
                        let (bytes, elapsed) = h.join().expect("ingester");
                        (b + bytes, e.max(elapsed))
                    });
            (m, bytes, elapsed)
        });
        record("mixed-restore", clients, config, &restore_m);
        let ingest_m = Measured {
            total_bytes: ingest_bytes,
            elapsed: ingest_elapsed,
            locate_coverage: 0.0,
            degraded: false,
        };
        record(
            "mixed-ingest",
            scenario.mixed_ingest_sessions,
            config,
            &ingest_m,
        );
        svc.cluster().clone().shutdown().expect("shutdown");
    }

    // 3. Scan resistance: hot-set hit rate with and without a concurrent
    // full restore.
    let undisturbed = hot_set_hit_ratio(&scenario, false);
    let with_restore = hot_set_hit_ratio(&scenario, true);
    let hit_ratio_kept = with_restore / undisturbed.max(1e-9);
    println!(
        "\ningest hot-set RAM hit rate: undisturbed {:.3}, with concurrent Bypass restore \
         {:.3} ({:.2}x)",
        undisturbed, with_restore, hit_ratio_kept
    );
    rows.push(format!(
        "hitrate-undisturbed,0,{},{},0,0,0,{undisturbed:.4},false",
        scenario.batch, scenario.window
    ));
    rows.push(format!(
        "hitrate-with-restore,0,{},{},0,0,0,{with_restore:.4},false",
        scenario.batch, scenario.window
    ));

    println!("\nchecks:");
    println!(
        "  pipelined / sequential MB/s at {max_clients} clients = {speedup_at_max:.2}x \
         (target ≥ 2.0x)"
    );
    println!("  hot-set hit rate with restore / undisturbed = {hit_ratio_kept:.2} (target ≥ 0.9)");

    write_csv(
        if quick {
            "ext_restore_quick"
        } else {
            "ext_restore"
        },
        "mode,clients,batch,window,total_bytes,elapsed_ms,mbps,locate_coverage,degraded",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_restore.json (full-run record)");
        return;
    }
    write_bench_json(
        "restore",
        &format!(
            "{{\n  \"bench\": \"ext_restore\",\n  \"quick\": {quick},\n  \"nodes\": {},\n  \
             \"chunks_per_client\": {},\n  \"chunk_size\": {},\n  \"passes\": {},\n  \
             \"batch_overhead_us\": {},\n  \"service_delay_ns\": {},\n  \"checks\": {{\n    \
             \"pipelined_speedup_at_{max_clients}_clients\": {speedup_at_max:.3},\n    \
             \"speedup_target\": 2.0,\n    \"hot_set_hit_rate_undisturbed\": {undisturbed:.4},\n    \
             \"hot_set_hit_rate_with_restore\": {with_restore:.4},\n    \
             \"hit_rate_kept\": {hit_ratio_kept:.4},\n    \"hit_rate_target\": 0.9\n  }},\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            scenario.nodes,
            scenario.chunks_per_client,
            scenario.chunk_size,
            scenario.passes,
            scenario.batch_overhead.as_micros(),
            scenario.service_delay.as_nanos(),
            results_json.join(",\n")
        ),
    );
}
