//! Figure 5 — "Throughput of SHHC" (scalability & performance).
//!
//! The paper's main result: cluster throughput (chunks/s) for 1–4 hash
//! nodes and batch sizes 1/128/2048, driving the four mixed Table I
//! workloads from two client machines against cold nodes. Expected shape:
//! batched throughput ≈ an order of magnitude above unbatched; batched
//! curves grow with node count; 128 ≈ 2048 at larger cluster sizes.

use shhc::{SimCluster, SimClusterConfig};
use shhc_bench::{banner, scale, write_csv};
use shhc_types::Fingerprint;
use shhc_workload::{mix, presets};

fn mixed_two_clients(scale: usize) -> Vec<Vec<Fingerprint>> {
    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(scale).generate())
        .collect();
    let stream = mix(&traces, 7);
    let half = stream.len() / 2;
    vec![stream[..half].to_vec(), stream[half..].to_vec()]
}

fn main() {
    let scale = scale();
    banner(
        "Figure 5 — cluster throughput vs nodes, by batch size",
        "batching wins ~10x; batched throughput scales with cluster size",
    );
    println!("scale: 1/{scale} of the four mixed Table I workloads, 2 clients, cold nodes\n");
    let clients = mixed_two_clients(scale);
    let total: usize = clients.iter().map(Vec::len).sum();
    println!("mixed stream: {total} fingerprints\n");

    let batch_sizes = [1usize, 128, 2048];
    let node_counts = [1u32, 2, 3, 4];

    println!(
        "{:>6} {:>14} {:>14} {:>14}   (chunks/second)",
        "nodes", "batch=1", "batch=128", "batch=2048"
    );

    let mut rows = Vec::new();
    let mut matrix = vec![vec![0.0f64; batch_sizes.len()]; node_counts.len()];
    for (ni, &nodes) in node_counts.iter().enumerate() {
        print!("{nodes:>6}");
        for (bi, &batch) in batch_sizes.iter().enumerate() {
            let mut sim =
                SimCluster::new(SimClusterConfig::paper_scale(nodes, batch)).expect("config");
            let report = sim.run(&clients).expect("run");
            let tput = report.throughput();
            matrix[ni][bi] = tput;
            print!(" {tput:>13.0}");
            rows.push(format!(
                "{nodes},{batch},{tput:.0},{},{}",
                report.duration.as_micros(),
                report.batch_latency.mean.as_micros()
            ));
        }
        println!();
    }

    println!("\nchecks:");
    let gain_batched = matrix[3][1] / matrix[0][1];
    let batch_advantage_1 = matrix[0][1] / matrix[0][0];
    let batch_advantage_4 = matrix[3][1] / matrix[3][0];
    let large_batch_close = matrix[3][2] / matrix[3][1];
    println!("  batch=128 scaling 1→4 nodes:     {gain_batched:.2}x (paper: ~2.5-3x)");
    println!(
        "  batch advantage at 1 node:       {batch_advantage_1:.1}x (paper: ~1 order of magnitude)"
    );
    println!("  batch advantage at 4 nodes:      {batch_advantage_4:.1}x");
    println!("  batch 2048 vs 128 at 4 nodes:    {large_batch_close:.2}x (paper: similar, ≈1x)");

    write_csv(
        "fig5",
        "nodes,batch_size,chunks_per_sec,duration_us,mean_batch_latency_us",
        &rows,
    );
}
