//! Extension — WAL crash recovery and replica re-sync.
//!
//! The paper treats node state as volatile; this harness measures the
//! cost of making it durable. Two sweeps over WAL-backed clusters:
//!
//! 1. **Replay time vs store size** — a single-node cluster (no replica
//!    to lean on) is loaded with N acked fingerprints, killed dirty
//!    (kill -9 semantics: the store is dropped unclosed, torn-tail
//!    faults armed), then warm-restarted. We record the recovery
//!    wall-clock, the journal/segment records replayed, and the torn
//!    tail records truncated — and assert every acked entry came back.
//! 2. **Re-sync traffic vs entries-behind** — a replicated pair takes a
//!    base load, one replica is killed, D more entries are acked by the
//!    survivor, and the victim warm-restarts: local replay catches it up
//!    to the crash point, then delta re-sync pulls what it missed. We
//!    record resynced entries and chunk round-trips against D; the
//!    headline check is `resynced ≤ D` — re-sync traffic is bounded by
//!    the missed delta, never a full copy.
//!
//! Writes `results/ext_recovery.csv` (one row per trial, both sweeps)
//! and `BENCH_recovery.json`. Set `SHHC_RECOVERY_QUICK=1` for a CI
//! smoke run (tiny sizes, no JSON).

use std::time::Instant;

use shhc::{
    ClusterConfig, Durability, FaultPlan, Fingerprint, NodeConfig, NodeId, RecoveryReport,
    ShhcCluster, WalConfig,
};
use shhc_bench::{banner, recovery_quick, write_bench_json, write_csv};
use shhc_flash::{FlashConfig, FlashGeometry};

/// A roomy device: recovery replay transiently doubles the live footprint
/// (segment images plus re-applied journal records before compaction), so
/// the largest sweep points need ~4x headroom over the resident set.
fn roomy_flash() -> FlashConfig {
    FlashConfig {
        geometry: FlashGeometry::new(4096, 16, 512),
        buckets: 512,
        ..FlashConfig::medium_test()
    }
}

fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("shhc-bench-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn load(cluster: &ShhcCluster, batch: &[Fingerprint]) {
    for window in batch.chunks(2_048) {
        cluster.lookup_insert_batch(window).expect("load");
    }
}

/// One replay trial: load `size` entries, crash dirty, warm-restart.
struct ReplayTrial {
    size: u64,
    report: RecoveryReport,
    restart_ms: f64,
}

fn replay_trial(size: u64, torn: bool) -> ReplayTrial {
    let dir = bench_dir(&format!("replay-{size}"));
    let wal = if torn {
        Durability::Wal(WalConfig::new(&dir).with_fault(FaultPlan::torn_tails()))
    } else {
        Durability::wal(&dir)
    };
    let mut node_config = NodeConfig::small_test().with_durability(wal);
    node_config.flash = roomy_flash();
    node_config.bloom_expected = 2 * size + 1_024;
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, node_config)).expect("spawn");
    load(&cluster, &fps(0..size));

    cluster.kill_node(NodeId::new(0)).expect("kill");
    let t0 = Instant::now();
    let report = cluster.restart_node(NodeId::new(0)).expect("warm restart");
    let restart_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.recovered_entries, size,
        "replay must rebuild every acked entry"
    );

    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    ReplayTrial {
        size,
        report,
        restart_ms,
    }
}

/// One re-sync trial: replicated pair, victim misses `delta` entries.
struct ResyncTrial {
    base: u64,
    delta: u64,
    report: RecoveryReport,
}

fn resync_trial(base: u64, delta: u64) -> ResyncTrial {
    let dir = bench_dir(&format!("resync-{delta}"));
    let mut node_config = NodeConfig::small_test().with_durability(Durability::wal(&dir));
    node_config.flash = roomy_flash();
    node_config.bloom_expected = 2 * (base + delta) + 1_024;
    let cluster = ShhcCluster::spawn(
        ClusterConfig::new(2, node_config)
            .with_replication(2)
            .with_migration_chunk(256),
    )
    .expect("spawn");
    load(&cluster, &fps(0..base));

    let victim = NodeId::new(0);
    cluster.kill_node(victim).expect("kill");
    load(&cluster, &fps(base..base + delta)); // acked by the survivor only
    let report = cluster.restart_node(victim).expect("warm restart");
    assert!(
        report.resynced <= delta,
        "re-sync traffic ({}) exceeded the missed delta ({delta})",
        report.resynced
    );

    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    ResyncTrial {
        base,
        delta,
        report,
    }
}

fn main() {
    let quick = recovery_quick();
    banner(
        "Extension — WAL crash recovery: replay time and re-sync traffic",
        "acked implies durable: warm restart replays the local journal, then \
         pulls only the missed delta from replica peers",
    );
    let (sizes, base, deltas): (Vec<u64>, u64, Vec<u64>) = if quick {
        (vec![500, 1_000], 1_000, vec![100, 250])
    } else {
        (
            vec![5_000, 10_000, 25_000, 50_000, 75_000],
            40_000,
            vec![500, 1_000, 2_500, 5_000, 10_000, 20_000],
        )
    };
    println!(
        "mode: {}\n",
        if quick { "quick (CI smoke)" } else { "full" }
    );

    // Sweep 1: replay time vs store size (torn tails armed throughout —
    // every crash also exercises the truncation path).
    println!(
        "{:>9} {:>12} {:>10} {:>6} {:>12} {:>14}",
        "entries", "replayed", "torn", "sync", "restart_ms", "entries/sec"
    );
    let mut rows = Vec::new();
    let mut replays = Vec::new();
    for &size in &sizes {
        let t = replay_trial(size, true);
        let rate = t.size as f64 / (t.restart_ms / 1e3).max(1e-9);
        println!(
            "{:>9} {:>12} {:>10} {:>6} {:>12.1} {:>14.0}",
            t.size, t.report.replayed, t.report.torn, t.report.resynced, t.restart_ms, rate
        );
        rows.push(format!(
            "replay,{},{},{},{},{},{:.2},{:.0}",
            t.size,
            t.report.recovered_entries,
            t.report.replayed,
            t.report.torn,
            t.report.resynced,
            t.restart_ms,
            rate
        ));
        replays.push(t);
    }

    // Sweep 2: re-sync traffic vs entries-behind (fixed base load).
    println!(
        "\n{:>9} {:>9} {:>10} {:>8} {:>12}",
        "behind", "resynced", "chunks", "ratio", "restart_ms"
    );
    let mut resyncs = Vec::new();
    for &delta in &deltas {
        let t = resync_trial(base, delta);
        let ratio = t.report.resynced as f64 / t.delta.max(1) as f64;
        let ms = t.report.wall_clock.as_secs_f64() * 1e3;
        println!(
            "{:>9} {:>9} {:>10} {:>8.2} {:>12.1}",
            t.delta, t.report.resynced, t.report.chunks, ratio, ms
        );
        rows.push(format!(
            "resync,{},{},{},{},{},{:.2},{:.2}",
            t.delta,
            t.report.recovered_entries,
            t.report.replayed,
            t.report.resynced,
            t.report.chunks,
            ms,
            ratio
        ));
        resyncs.push(t);
    }
    write_csv(
        if quick {
            "ext_recovery_quick"
        } else {
            "ext_recovery"
        },
        "sweep,param,recovered_entries,replayed,torn_or_resynced,resynced_or_chunks,\
         wall_clock_ms,rate_or_ratio",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_recovery.json (full-run record)");
        return;
    }

    let replay_json: Vec<String> = replays
        .iter()
        .map(|t| {
            format!(
                "{{\"entries\": {}, \"replayed\": {}, \"torn\": {}, \
                 \"restart_ms\": {:.2}, \"entries_per_sec\": {:.0}}}",
                t.size,
                t.report.replayed,
                t.report.torn,
                t.restart_ms,
                t.size as f64 / (t.restart_ms / 1e3).max(1e-9)
            )
        })
        .collect();
    let resync_json: Vec<String> = resyncs
        .iter()
        .map(|t| {
            format!(
                "{{\"base\": {}, \"behind\": {}, \"resynced\": {}, \"chunks\": {}, \
                 \"restart_ms\": {:.2}}}",
                t.base,
                t.delta,
                t.report.resynced,
                t.report.chunks,
                t.report.wall_clock.as_secs_f64() * 1e3
            )
        })
        .collect();
    let bounded = resyncs.iter().all(|t| t.report.resynced <= t.delta);
    let torn_exercised = replays.iter().all(|t| t.report.torn >= 1);
    write_bench_json(
        "recovery",
        &format!(
            "{{\n  \"bench\": \"ext_recovery\",\n  \"quick\": {quick},\n  \
             \"replay\": [\n    {}\n  ],\n  \"resync\": [\n    {}\n  ],\n  \
             \"resync_bounded_by_delta\": {bounded},\n  \
             \"torn_tails_exercised\": {torn_exercised}\n}}\n",
            replay_json.join(",\n    "),
            resync_json.join(",\n    ")
        ),
    );
}
