//! Extension A — the batch-size/latency trade-off the paper defers:
//! "this aggregation of queries … introduces latency in the lookup
//! operations. A tradeoff can be obtained … We intend to further explore
//! this issue to find a tradeoff between query latency and optimal batch
//! size."

use shhc::{SimCluster, SimClusterConfig};
use shhc_bench::{banner, scale, write_csv};
use shhc_workload::{mix, presets};

fn main() {
    let scale = (scale() * 4).max(1); // lighter than fig5: many more runs
    banner(
        "Extension A — batch size vs throughput and client latency",
        "batching trades client-perceived latency for server throughput (paper future work)",
    );
    println!("4 nodes, 2 clients, 1/{scale}-scale mixed workloads\n");

    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(scale).generate())
        .collect();
    let stream = mix(&traces, 7);
    let half = stream.len() / 2;
    let clients = vec![stream[..half].to_vec(), stream[half..].to_vec()];

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "batch", "chunks/s", "mean lat", "p95 lat", "lat/chunk"
    );
    let mut rows = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for batch in [1usize, 8, 32, 128, 512, 2048, 8192] {
        let mut sim = SimCluster::new(SimClusterConfig::paper_scale(4, batch)).expect("config");
        let report = sim.run(&clients).expect("run");
        let tput = report.throughput();
        let lat = report.batch_latency;
        println!(
            "{batch:>8} {tput:>14.0} {:>14} {:>14} {:>11.1} µs",
            lat.mean,
            lat.p95,
            lat.mean.as_micros_f64() / batch as f64
        );
        rows.push(format!(
            "{batch},{tput:.0},{},{},{:.2}",
            lat.mean.as_micros(),
            lat.p95.as_micros(),
            lat.mean.as_micros_f64() / batch as f64
        ));
        // "Optimal" here: highest throughput per unit of mean latency
        // growth — the knee of the curve.
        let score = tput / lat.mean.as_micros_f64().max(1.0).sqrt();
        if best.map(|(_, s)| score > s).unwrap_or(true) {
            best = Some((batch, score));
        }
    }

    if let Some((batch, _)) = best {
        println!("\nknee of the throughput/latency curve at batch ≈ {batch}");
    }
    println!("throughput saturates once per-message overhead is amortized;");
    println!("after that, bigger batches only buy latency — the paper's trade-off.");

    write_csv(
        "ext_batch_tradeoff",
        "batch_size,chunks_per_sec,mean_latency_us,p95_latency_us,latency_per_chunk_us",
        &rows,
    );
}
