//! Extension — surviving 2× saturation: bounded admission and a
//! load-balanced front-end tier under open-loop overload.
//!
//! A front-end tier with unbounded queues degrades catastrophically past
//! saturation: queues grow without bound, every admitted request inherits
//! the full backlog's delay, and goodput collapses exactly when demand
//! peaks. This harness drives [`FrontendTier`]s of 1 and 4 front-ends —
//! each front-end's aggregation capacity modeled by a token-bucket
//! [`IngestModel`] and its queue bounded by a shedding
//! [`AdmissionPolicy`] — with an **open-loop** client population
//! ([`OverloadSpec`]: thousands of simulated clients on precomputed
//! arrival schedules, so the offered rate does not slow down when the
//! system does) swept from 0.5× to 2× the tier's saturation rate.
//!
//! Expected shape: goodput climbs with offered load up to saturation and
//! then *stays flat* — the admission gate sheds the excess at the door
//! (`Error::Overloaded` in microseconds) instead of queueing it, so at
//! 2× offered load goodput holds ≥ 0.9× its peak and the p99 latency of
//! *admitted* requests stays within 2× of its 1×-load value. The 4-FE
//! tier's peak goodput exceeds the single front-end's (power-of-two-
//! choices balancing across four ingest buckets). Emits
//! `results/ext_overload.csv` plus `BENCH_overload.json` at the
//! workspace root. Set `SHHC_OVERLOAD_QUICK=1` for a CI smoke run.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use shhc::{
    AdmissionPolicy, ClusterConfig, FrontendConfig, FrontendTier, IngestModel, NodeConfig,
    ShhcCluster,
};
use shhc_bench::{banner, overload_quick, write_bench_json, write_csv};
use shhc_types::Nanos;
use shhc_workload::OverloadSpec;

struct Scenario {
    nodes: u32,
    fe_counts: Vec<usize>,
    /// Offered-load sweep, as multiples of the tier's saturation rate.
    offered_mults: Vec<f64>,
    /// Modeled aggregation capacity of one front-end, submissions/s.
    per_fe_rate: f64,
    workers: usize,
    clients_per_worker: usize,
    duration: Nanos,
    batch_size: usize,
    max_age: Duration,
}

struct Measured {
    offered_per_sec: f64,
    submitted: u64,
    shed: u64,
    answered_ok: u64,
    errors: u64,
    elapsed: Duration,
    goodput_per_sec: f64,
    shed_rate: f64,
    admitted_p99: Option<Duration>,
    admitted_p999: Option<Duration>,
    node_queue_peak: u64,
}

fn spawn_cluster(scenario: &Scenario) -> ShhcCluster {
    let mut node_config = NodeConfig::small_test();
    node_config.flash = shhc_flash::FlashConfig::medium_test();
    node_config.cache_capacity = 16_384;
    node_config.bloom_expected = 500_000;
    node_config.batch_overhead = Duration::from_micros(100);
    ShhcCluster::spawn(ClusterConfig::new(scenario.nodes, node_config)).expect("spawn cluster")
}

/// One sweep point: a fresh cluster + tier of `fe_count` front-ends,
/// driven open-loop at `offered` submissions/s until the schedule and
/// every admitted ticket drain.
fn drive(scenario: &Scenario, fe_count: usize, offered: f64) -> Measured {
    let cluster = spawn_cluster(scenario);
    let config = FrontendConfig::new(scenario.batch_size, scenario.max_age)
        .admission(AdmissionPolicy::Shed { max_pending: 4096 })
        .ingest(IngestModel::per_sec(scenario.per_fe_rate));
    let tier = FrontendTier::new(cluster.clone(), fe_count, &config);
    let spec = OverloadSpec::new(
        scenario.workers,
        scenario.clients_per_worker,
        offered,
        scenario.duration,
    );

    let barrier = Arc::new(Barrier::new(scenario.workers + 1));
    let mut handles = Vec::new();
    for w in 0..scenario.workers {
        let schedule = spec.worker_schedule(w);
        let tier = tier.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let start = Instant::now();
            let mut shed = 0u64;
            let mut tickets = Vec::with_capacity(schedule.len());
            for arrival in schedule {
                // Open loop: sleep only while ahead of schedule; a late
                // worker submits immediately and catches up in a burst.
                let due = arrival.at.to_duration();
                let now = start.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let tenant = Some(u32::from(arrival.client));
                let (ticket, was_shed) = tier.submit_from(tenant, arrival.fingerprint);
                if was_shed {
                    shed += 1;
                } else {
                    tickets.push(ticket);
                }
            }
            (shed, tickets)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut shed = 0u64;
    let mut tickets = Vec::new();
    for h in handles {
        let (s, t) = h.join().expect("worker");
        shed += s;
        tickets.extend(t);
    }
    // Tail: answer the last partial batches now, not at the age limit.
    let _ = tier.flush_all();
    let mut answered_ok = 0u64;
    let mut errors = 0u64;
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(30)) {
            Ok(_) => answered_ok += 1,
            Err(_) => errors += 1,
        }
    }
    let elapsed = start.elapsed();
    let stats = tier.stats();
    let node_queue_peak = cluster
        .stats()
        .map(|s| s.max_queue_peak())
        .unwrap_or_default();
    cluster.shutdown().expect("shutdown");
    let submitted = answered_ok + errors + shed;
    Measured {
        offered_per_sec: offered,
        submitted,
        shed,
        answered_ok,
        errors,
        elapsed,
        goodput_per_sec: answered_ok as f64 / elapsed.as_secs_f64(),
        shed_rate: stats.shed_rate(),
        admitted_p99: stats.admitted_p99(),
        admitted_p999: stats.admitted_p999(),
        node_queue_peak,
    }
}

fn us(d: Option<Duration>) -> f64 {
    d.unwrap_or_default().as_secs_f64() * 1e6
}

fn main() {
    let quick = overload_quick();
    let scenario = if quick {
        Scenario {
            nodes: 2,
            fe_counts: vec![1, 2],
            offered_mults: vec![1.0, 2.0],
            per_fe_rate: 1_200.0,
            workers: 2,
            clients_per_worker: 64,
            duration: Nanos::from_millis(250),
            batch_size: 32,
            max_age: Duration::from_millis(2),
        }
    } else {
        Scenario {
            nodes: 2,
            fe_counts: vec![1, 4],
            offered_mults: vec![0.5, 1.0, 1.5, 2.0],
            per_fe_rate: 1_800.0,
            workers: 4,
            clients_per_worker: 512,
            duration: Nanos::from_millis(1_200),
            batch_size: 64,
            max_age: Duration::from_millis(2),
        }
    };
    banner(
        "Extension — overload: bounded admission + load-balanced front-end tier at 2× saturation",
        "a bounded, shedding front-end tier holds ≥0.9× peak goodput and ≤2× admitted p99 \
         at twice its saturation rate, instead of queue-collapsing (Figure-4 tier)",
    );
    println!(
        "mode: {}, {} nodes, {} modeled fps/s per front-end, {} workers × {} simulated \
         clients, {} ms offered window, batch {} / {} ms age\n",
        if quick { "quick (CI smoke)" } else { "full" },
        scenario.nodes,
        scenario.per_fe_rate,
        scenario.workers,
        scenario.clients_per_worker,
        scenario.duration.as_nanos() / 1_000_000,
        scenario.batch_size,
        scenario.max_age.as_millis(),
    );

    println!(
        "{:>4} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9} {:>8} {:>10} {:>11} {:>7}",
        "fes",
        "mult",
        "offered",
        "submit",
        "shed",
        "ok",
        "goodput",
        "shed%",
        "p99_ms",
        "p999_ms",
        "nodeQ"
    );
    let mut rows = Vec::new();
    // (fe_count, mult, measured) for the checks and the JSON record.
    let mut sweep: Vec<(usize, f64, Measured)> = Vec::new();
    for &fe_count in &scenario.fe_counts {
        let saturation = scenario.per_fe_rate * fe_count as f64;
        for &mult in &scenario.offered_mults {
            let m = drive(&scenario, fe_count, saturation * mult);
            println!(
                "{fe_count:>4} {mult:>5.1}x {:>9.0} {:>9} {:>8} {:>8} {:>9.0} {:>7.1}% \
                 {:>10.2} {:>11.2} {:>7}",
                m.offered_per_sec,
                m.submitted,
                m.shed,
                m.answered_ok,
                m.goodput_per_sec,
                m.shed_rate * 100.0,
                us(m.admitted_p99) / 1e3,
                us(m.admitted_p999) / 1e3,
                m.node_queue_peak,
            );
            rows.push(format!(
                "{fe_count},{mult},{:.0},{},{},{},{},{:.3},{:.0},{:.4},{:.1},{:.1},{}",
                m.offered_per_sec,
                m.submitted,
                m.shed,
                m.answered_ok,
                m.errors,
                m.elapsed.as_secs_f64() * 1e3,
                m.goodput_per_sec,
                m.shed_rate,
                us(m.admitted_p99),
                us(m.admitted_p999),
                m.node_queue_peak,
            ));
            sweep.push((fe_count, mult, m));
        }
    }

    println!("\nchecks:");
    let point = |fes: usize, mult: f64| {
        sweep
            .iter()
            .find(|(f, m, _)| *f == fes && (*m - mult).abs() < 1e-9)
            .map(|(_, _, m)| m)
    };
    let peak = |fes: usize| {
        sweep
            .iter()
            .filter(|(f, ..)| *f == fes)
            .map(|(_, _, m)| m.goodput_per_sec)
            .fold(0.0f64, f64::max)
    };
    let mut fe_summaries = Vec::new();
    for &fe_count in &scenario.fe_counts {
        let peak_goodput = peak(fe_count);
        let (Some(at_1x), Some(at_2x)) = (point(fe_count, 1.0), point(fe_count, 2.0)) else {
            continue;
        };
        let goodput_ratio = at_2x.goodput_per_sec / peak_goodput.max(1.0);
        let p99_ratio = us(at_2x.admitted_p99) / us(at_1x.admitted_p99).max(1.0);
        println!(
            "  {fe_count} FE: goodput@2x / peak = {goodput_ratio:.2} (target ≥ 0.9); \
             admitted p99 @2x/@1x = {p99_ratio:.2} (target ≤ 2.0)"
        );
        fe_summaries.push((fe_count, peak_goodput, goodput_ratio, p99_ratio));
    }
    let first = scenario.fe_counts.first().copied().unwrap_or(1);
    if let Some(last) = scenario.fe_counts.last().copied().filter(|&l| l > first) {
        let scaling = peak(last) / peak(first).max(1.0);
        println!("  {last}-FE peak goodput / {first}-FE = {scaling:.2}x (target ≥ 1.3x)");
    }

    // Quick (smoke) runs write under a distinct name so they can never
    // clobber the committed full-run artifacts.
    write_csv(
        if quick {
            "ext_overload_quick"
        } else {
            "ext_overload"
        },
        "frontends,offered_mult,offered_per_sec,submitted,shed,answered_ok,errors,\
         elapsed_ms,goodput_per_sec,shed_rate,admitted_p99_us,admitted_p999_us,\
         node_queue_peak",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_overload.json (full-run record)");
        return;
    }
    let entries: Vec<String> = sweep
        .iter()
        .map(|(fes, mult, m)| {
            format!(
                "    {{\"frontends\": {fes}, \"offered_mult\": {mult}, \
                 \"offered_per_sec\": {:.0}, \"goodput_per_sec\": {:.0}, \
                 \"shed_rate\": {:.4}, \"admitted_p99_us\": {:.1}, \
                 \"admitted_p999_us\": {:.1}}}",
                m.offered_per_sec,
                m.goodput_per_sec,
                m.shed_rate,
                us(m.admitted_p99),
                us(m.admitted_p999),
            )
        })
        .collect();
    let checks: Vec<String> = fe_summaries
        .iter()
        .map(|(fes, peak, ratio, p99)| {
            format!(
                "    {{\"frontends\": {fes}, \"peak_goodput_per_sec\": {peak:.0}, \
                 \"goodput_2x_over_peak\": {ratio:.3}, \"p99_2x_over_1x\": {p99:.3}}}"
            )
        })
        .collect();
    write_bench_json(
        "overload",
        &format!(
            "{{\n  \"bench\": \"ext_overload\",\n  \"quick\": {quick},\n  \
             \"nodes\": {},\n  \"per_fe_rate\": {},\n  \"workers\": {},\n  \
             \"clients\": {},\n  \"duration_ms\": {},\n  \"checks\": [\n{}\n  ],\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            scenario.nodes,
            scenario.per_fe_rate,
            scenario.workers,
            scenario.workers * scenario.clients_per_worker,
            scenario.duration.as_nanos() / 1_000_000,
            checks.join(",\n"),
            entries.join(",\n")
        ),
    );
}
