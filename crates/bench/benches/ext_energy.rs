//! Extension E — energy accounting (paper future work: "energy
//! efficiency of hash operations in cloud deduplication storage
//! systems"): per-lookup energy by cluster size and workload, from the
//! node and device counters.

use shhc::{EnergyModel, SimCluster, SimClusterConfig};
use shhc_bench::{banner, scale, write_csv};
use shhc_workload::presets;

fn main() {
    let scale = (scale() * 4).max(1);
    banner(
        "Extension E — energy per lookup by cluster size and workload",
        "redundant workloads are cheaper per op (RAM hits); flash programs dominate cold data",
    );
    let model = EnergyModel::default();
    println!("energy model: {model:?}\n");

    let mut rows = Vec::new();
    for spec in [presets::web_server(), presets::mail_server()] {
        let trace = spec.clone().scaled(scale).generate();
        println!(
            "workload {} ({} fingerprints, {:.0}% redundant):",
            spec.name,
            trace.len(),
            spec.redundancy * 100.0
        );
        println!(
            "  {:>6} {:>14} {:>16} {:>16} {:>12}",
            "nodes", "total (J)", "active µJ/op", "w/ idle µJ/op", "flash ops"
        );
        for nodes in [1u32, 2, 4] {
            let mut sim =
                SimCluster::new(SimClusterConfig::paper_scale(nodes, 128)).expect("config");
            let report = sim
                .run(std::slice::from_ref(&trace.fingerprints))
                .expect("run");
            // End-of-window persistence, so flash programs are visible.
            sim.flush_all().expect("flush");

            let mut joules = 0.0;
            let mut active = 0.0;
            let mut flash_ops = 0u64;
            for node in sim.nodes() {
                let stats = node.stats();
                let device = node.device_stats();
                joules += model.energy(&stats, &device);
                active += model.device_energy(&stats, &device);
                flash_ops += device.reads + device.programs + device.erases;
            }
            let per_op = joules / report.chunks as f64 * 1e6;
            let active_per_op = active / report.chunks as f64 * 1e6;
            println!(
                "  {nodes:>6} {joules:>14.3} {active_per_op:>16.2} {per_op:>16.2} {flash_ops:>12}"
            );
            rows.push(format!(
                "{},{nodes},{joules:.4},{active_per_op:.3},{per_op:.3},{flash_ops}",
                spec.name
            ));
        }
        println!();
    }

    println!("reading: active energy differs by workload (cold inserts pay");
    println!("amortized flash programs; hot duplicates stay in RAM), but the");
    println!("idle draw over busy time dominates totals — the real energy");
    println!("lever is finishing the window faster, i.e. Figure 1's scaling.");

    write_csv(
        "ext_energy",
        "workload,nodes,total_joules,active_uj_per_lookup,total_uj_per_lookup,flash_ops",
        &rows,
    );
}
