//! Extension B — single-node comparison against the literature baselines
//! the paper positions itself around: the HDD-index strawman, a
//! ChunkStash-like flash index, and a DDFS-like locality-cached index,
//! all behind the same trait as one SHHC hybrid node.

use shhc_baseline::{ChunkStashIndex, DdfsIndex, FingerprintIndex, HddIndex, ShhcNodeIndex};
use shhc_bench::{banner, scale, write_csv};
use shhc_node::{HybridHashNode, NodeConfig};
use shhc_types::NodeId;
use shhc_workload::presets;

fn main() {
    let scale = (scale() * 8).max(1); // HDD baseline pays ms per op — keep it humane
    banner(
        "Extension B — one hybrid node vs literature baselines",
        "flash-based indexes beat the disk index by 1-2 orders of magnitude (ChunkStash: 7x-60x)",
    );
    let trace = presets::home_dir().scaled(scale).generate();
    println!(
        "workload: Home Dir at 1/{scale} scale — {} fingerprints, 37% redundant\n",
        trace.len()
    );

    let mut indexes: Vec<Box<dyn FingerprintIndex>> = vec![
        Box::new(HddIndex::default_index()),
        Box::new(DdfsIndex::default_index()),
        Box::new(ChunkStashIndex::default_index().expect("config")),
        Box::new(ShhcNodeIndex::new(
            HybridHashNode::new(NodeId::new(0), NodeConfig::default_node()).expect("config"),
        )),
    ];

    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "index", "virtual time", "lookups/s", "µs/op", "entries"
    );
    let mut rows = Vec::new();
    let mut per_op_by_name = Vec::new();
    for index in &mut indexes {
        for fp in &trace.fingerprints {
            index.lookup_insert(*fp).expect("lookup");
        }
        let busy = index.busy();
        let ops = trace.len() as f64;
        let per_op = busy.as_micros_f64() / ops;
        let tput = ops / busy.as_secs_f64();
        println!(
            "{:<14} {:>14} {:>14.0} {:>12.1} {:>12}",
            index.name(),
            busy,
            tput,
            per_op,
            index.entries()
        );
        rows.push(format!(
            "{},{},{tput:.0},{per_op:.2},{}",
            index.name(),
            busy.as_micros(),
            index.entries()
        ));
        per_op_by_name.push((index.name(), per_op));
    }

    let hdd = per_op_by_name
        .iter()
        .find(|(n, _)| *n == "hdd-index")
        .map(|(_, c)| *c)
        .unwrap_or(0.0);
    println!("\nspeedup over the HDD index:");
    for (name, per_op) in &per_op_by_name {
        if *name != "hdd-index" {
            println!("  {name:<14} {:.1}x", hdd / per_op);
        }
    }
    println!("\n(SHHC's per-node design matches the flash baselines while also");
    println!(" being distributable — the cluster-level win is Figures 1 & 5.)");

    write_csv(
        "ext_baselines",
        "index,busy_us,lookups_per_sec,entries",
        &rows,
    );
}
