//! Extension — cross-client aggregation vs per-client batching, in
//! wall-clock terms.
//!
//! The paper's Figure-4 flow has one web front-end aggregating the
//! fingerprints of many concurrent clients before querying the hash
//! nodes. This harness measures what that buys: K paced client threads
//! (open-loop style — a fixed think time between submissions, the
//! `MultiClientSpec` preset) replay disjoint trace shards against
//!
//! - `shared` — one [`SharedFrontend`]: submissions from every client
//!   join one batch queue and receive completion tickets; batches close
//!   on size, or on age via the background flusher,
//! - `per_client` — K independent [`SyncFrontend`] sessions at the *same*
//!   size/age config: the pre-refactor architecture, where each client
//!   batches alone and blocks on its own dispatch.
//!
//! Nodes charge a wall-clock `batch_overhead` per frame (the per-message
//! network/protocol cost batching exists to amortize) — so a front-end
//! that only ever fills `arrival_rate × max_age` of its batch pays that
//! overhead over fewer fingerprints. Expected shape: the shared front-end
//! fills full batches from the aggregate stream and sustains the offered
//! load at a p99 queueing delay within 2×`max_age`; per-client batching
//! saturates the nodes with small batches and falls behind. Emits
//! `results/ext_frontend_concurrency.csv` plus
//! `BENCH_frontend_concurrency.json` at the workspace root. Set
//! `SHHC_FRONTEND_QUICK=1` for a sub-second CI smoke run.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use shhc::{ClusterConfig, NodeConfig, SharedFrontend, ShhcCluster, SyncFrontend};
use shhc_bench::{banner, frontend_quick, write_bench_json, write_csv};
use shhc_net::SharedBatcherStats;
use shhc_types::Nanos;
use shhc_workload::MultiClientSpec;

struct Scenario {
    nodes: u32,
    client_counts: Vec<usize>,
    batch_sizes: Vec<usize>,
    per_client: usize,
    max_age: Duration,
    arrival_gap: Duration,
    batch_overhead: Duration,
}

struct Measured {
    lookups: u64,
    elapsed: Duration,
    lookups_per_sec: f64,
    mean_occupancy: f64,
    p99_delay: Option<Duration>,
    closed_by_size: u64,
    closed_by_age: u64,
}

fn spawn_cluster(scenario: &Scenario) -> ShhcCluster {
    let mut node_config = NodeConfig::small_test();
    node_config.flash = shhc_flash::FlashConfig::medium_test();
    node_config.cache_capacity = 16_384;
    node_config.bloom_expected = 500_000;
    node_config.batch_overhead = scenario.batch_overhead;
    ShhcCluster::spawn(ClusterConfig::new(scenario.nodes, node_config)).expect("spawn cluster")
}

/// Merges per-session stats (per-client mode has K of them) into one
/// distribution for reporting.
fn merge_stats(all: &[SharedBatcherStats]) -> Measured {
    let mut merged = SharedBatcherStats::default();
    for s in all {
        merged.batches += s.batches;
        merged.fingerprints += s.fingerprints;
        merged.closed_by_size += s.closed_by_size;
        merged.closed_by_age += s.closed_by_age;
        merged.closed_by_flush += s.closed_by_flush;
        merged
            .delay_samples_ns
            .extend_from_slice(&s.delay_samples_ns);
    }
    Measured {
        lookups: 0,
        elapsed: Duration::ZERO,
        lookups_per_sec: 0.0,
        mean_occupancy: merged.mean_occupancy(),
        p99_delay: merged.delay_quantile(0.99),
        closed_by_size: merged.closed_by_size,
        closed_by_age: merged.closed_by_age,
    }
}

/// K client threads share one front-end; each paces its shard, collects
/// completion tickets, flushes its tail and waits for every answer.
fn drive_shared(
    scenario: &Scenario,
    clients: usize,
    batch_size: usize,
    shards: &[Vec<shhc_types::Fingerprint>],
) -> Measured {
    let cluster = spawn_cluster(scenario);
    let frontend = SharedFrontend::new(cluster.clone(), batch_size, scenario.max_age);
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for shard in shards.iter().take(clients).cloned() {
        let fe = frontend.clone();
        let barrier = Arc::clone(&barrier);
        let gap = scenario.arrival_gap;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut tickets = Vec::with_capacity(shard.len());
            for fp in shard {
                std::thread::sleep(gap);
                tickets.push(fe.submit(fp));
            }
            // Tail: don't leave the last partial batch to the age limit.
            fe.flush().expect("flush");
            let mut answered = 0u64;
            for t in tickets {
                t.wait().expect("ticket answer");
                answered += 1;
            }
            answered
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let lookups: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed();
    let stats = frontend.stats();
    let mut m = merge_stats(std::slice::from_ref(&stats));
    cluster.shutdown().expect("shutdown");
    m.lookups = lookups;
    m.elapsed = elapsed;
    m.lookups_per_sec = lookups as f64 / elapsed.as_secs_f64();
    m
}

/// K independent per-client sessions at the same size/age config — the
/// pre-refactor synchronous front-end as measured baseline.
fn drive_per_client(
    scenario: &Scenario,
    clients: usize,
    batch_size: usize,
    shards: &[Vec<shhc_types::Fingerprint>],
) -> Measured {
    let cluster = spawn_cluster(scenario);
    let barrier = Arc::new(Barrier::new(clients + 1));
    let max_age = Nanos::from(scenario.max_age);
    let mut handles = Vec::new();
    for shard in shards.iter().take(clients).cloned() {
        let cluster = cluster.clone();
        let barrier = Arc::clone(&barrier);
        let gap = scenario.arrival_gap;
        handles.push(std::thread::spawn(move || {
            let mut fe = SyncFrontend::new(cluster, batch_size, max_age);
            barrier.wait();
            let mut answered = 0u64;
            // Queueing delay for the baseline: time from a batch's first
            // submission to its dispatch, attributed per fingerprint.
            let mut delays_ns: Vec<u64> = Vec::new();
            let mut opened_at: Option<Instant> = None;
            for fp in shard {
                std::thread::sleep(gap);
                let opened = *opened_at.get_or_insert_with(Instant::now);
                if let Some(results) = fe.submit(fp).expect("submit") {
                    let waited = opened.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    answered += results.len() as u64;
                    delays_ns.extend(std::iter::repeat_n(waited, results.len()));
                    opened_at = None;
                }
            }
            if let Some(opened) = opened_at {
                let results = fe.flush().expect("flush");
                let waited = opened.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                answered += results.len() as u64;
                delays_ns.extend(std::iter::repeat_n(waited, results.len()));
            }
            (answered, fe.batches_sent(), delays_ns)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut lookups = 0u64;
    let mut batches = 0u64;
    let mut delays_ns: Vec<u64> = Vec::new();
    for h in handles {
        let (answered, sent, delays) = h.join().unwrap();
        lookups += answered;
        batches += sent;
        delays_ns.extend(delays);
    }
    let elapsed = start.elapsed();
    cluster.shutdown().expect("shutdown");
    let stats = SharedBatcherStats {
        batches,
        fingerprints: lookups,
        delay_samples_ns: delays_ns,
        ..SharedBatcherStats::default()
    };
    let mut m = merge_stats(std::slice::from_ref(&stats));
    m.lookups = lookups;
    m.elapsed = elapsed;
    m.lookups_per_sec = lookups as f64 / elapsed.as_secs_f64();
    m
}

fn main() {
    let quick = frontend_quick();
    let scenario = if quick {
        Scenario {
            nodes: 2,
            client_counts: vec![2],
            batch_sizes: vec![16],
            per_client: 120,
            max_age: Duration::from_millis(2),
            arrival_gap: Duration::from_micros(50),
            batch_overhead: Duration::from_micros(200),
        }
    } else {
        Scenario {
            nodes: 2,
            client_counts: vec![2, 4, 8],
            batch_sizes: vec![16, 64],
            per_client: 2000,
            max_age: Duration::from_millis(4),
            arrival_gap: Duration::from_micros(250),
            batch_overhead: Duration::from_millis(1),
        }
    };
    banner(
        "Extension — shared front-end: cross-client aggregation vs per-client batching",
        "aggregating many clients' fingerprints at one front-end amortizes per-message \
         cost, sustaining higher lookup throughput at bounded queueing delay (Figure-4 flow)",
    );
    println!(
        "mode: {}, {} nodes, {} fps/client, think {} µs/fp, max_age {} ms, \
         {} µs per-frame node overhead\n",
        if quick { "quick (CI smoke)" } else { "full" },
        scenario.nodes,
        scenario.per_client,
        scenario.arrival_gap.as_micros(),
        scenario.max_age.as_millis(),
        scenario.batch_overhead.as_micros(),
    );

    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>9} {:>11} {:>11}   (lookups/second)",
        "clients", "batch", "per_client", "shared", "speedup", "sh.occup", "sh.p99_ms"
    );
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    let max_clients = *scenario.client_counts.iter().max().unwrap();
    for &batch_size in &scenario.batch_sizes {
        for &clients in &scenario.client_counts {
            let spec = MultiClientSpec::open_loop(max_clients, scenario.per_client);
            let shards = spec.shards();
            let per = drive_per_client(&scenario, clients, batch_size, &shards);
            let shared = drive_shared(&scenario, clients, batch_size, &shards);
            let speedup = shared.lookups_per_sec / per.lookups_per_sec;
            let p99 = shared.p99_delay.unwrap_or_default();
            println!(
                "{clients:>8} {batch_size:>6} {:>12.0} {:>12.0} {speedup:>8.2}x {:>11.1} {:>11.2}",
                per.lookups_per_sec,
                shared.lookups_per_sec,
                shared.mean_occupancy,
                p99.as_secs_f64() * 1e3,
            );
            for (name, m) in [("per_client", &per), ("shared", &shared)] {
                rows.push(format!(
                    "{clients},{batch_size},{name},{},{:.3},{:.0},{:.2},{:.1},{},{}",
                    m.lookups,
                    m.elapsed.as_secs_f64() * 1e3,
                    m.lookups_per_sec,
                    m.mean_occupancy,
                    m.p99_delay.unwrap_or_default().as_secs_f64() * 1e6,
                    m.closed_by_size,
                    m.closed_by_age,
                ));
            }
            summary.push((clients, batch_size, per, shared, speedup));
        }
    }

    println!("\nchecks:");
    let acceptance = summary
        .iter()
        .filter(|(c, ..)| *c == max_clients)
        .max_by_key(|(_, b, ..)| *b);
    if let Some((clients, batch, _, shared, speedup)) = acceptance {
        let p99 = shared.p99_delay.unwrap_or_default();
        println!(
            "  shared vs {clients} per-client front-ends at batch {batch}: \
             {speedup:.2}x (target: ≥ 1.5x)"
        );
        println!(
            "  shared p99 queueing delay: {:.2} ms (bound: ≤ 2×max_age = {:.2} ms)",
            p99.as_secs_f64() * 1e3,
            scenario.max_age.as_secs_f64() * 2e3
        );
    }

    // Quick (smoke) runs write under a distinct name so they can never
    // clobber the committed full-run artifacts.
    write_csv(
        if quick {
            "ext_frontend_concurrency_quick"
        } else {
            "ext_frontend_concurrency"
        },
        "clients,batch_size,mode,total_lookups,elapsed_ms,lookups_per_sec,\
         mean_batch_occupancy,p99_queue_delay_us,closed_by_size,closed_by_age",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_frontend_concurrency.json (full-run record)");
        return;
    }
    let entries: Vec<String> = summary
        .iter()
        .map(|(clients, batch, per, shared, speedup)| {
            format!(
                "    {{\"clients\": {clients}, \"batch_size\": {batch}, \
                 \"per_client_lookups_per_sec\": {:.0}, \
                 \"shared_lookups_per_sec\": {:.0}, \"speedup\": {speedup:.3}, \
                 \"shared_mean_occupancy\": {:.2}, \
                 \"shared_p99_queue_delay_us\": {:.1}}}",
                per.lookups_per_sec,
                shared.lookups_per_sec,
                shared.mean_occupancy,
                shared.p99_delay.unwrap_or_default().as_secs_f64() * 1e6,
            )
        })
        .collect();
    write_bench_json(
        "frontend_concurrency",
        &format!(
            "{{\n  \"bench\": \"ext_frontend_concurrency\",\n  \"quick\": {quick},\n  \
             \"nodes\": {},\n  \"per_client_fingerprints\": {},\n  \
             \"arrival_gap_us\": {},\n  \"max_age_us\": {},\n  \
             \"batch_overhead_us\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            scenario.nodes,
            scenario.per_client,
            scenario.arrival_gap.as_micros(),
            scenario.max_age.as_micros(),
            scenario.batch_overhead.as_micros(),
            entries.join(",\n")
        ),
    );
}
