//! Table I — "Workload characteristics".
//!
//! Generates the four synthetic stand-in workloads and measures the three
//! columns the paper reports (fingerprints, % redundant, mean duplicate
//! distance), next to the paper's targets. At `SHHC_SCALE=1` the traces
//! have the paper's exact lengths; the default 1/16 scale preserves the
//! redundancy and the distance *relative to stream length*.

use shhc_bench::{banner, scale, write_csv};
use shhc_workload::{characterize, presets};

fn main() {
    let scale = scale();
    banner(
        "Table I — workload characteristics (targets vs measured)",
        "four real-world traces spanning 17-85% redundancy and 10k-1M locality distance",
    );
    println!("scale: 1/{scale} (set SHHC_SCALE=1 for full-size traces)\n");

    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>8} {:>12} {:>12} {:>7}",
        "workload", "fps(target)", "fps(meas)", "red%(t)", "red%(m)", "dist(t)", "dist(m)", "chunk"
    );

    let mut rows = Vec::new();
    for spec in presets::all() {
        let scaled = spec.clone().scaled(scale);
        let trace = scaled.generate();
        let stats = characterize(&trace.fingerprints);
        println!(
            "{:<14} {:>12} {:>12} {:>8.1} {:>8.1} {:>12.0} {:>12.0} {:>6}K",
            spec.name,
            scaled.total,
            stats.total,
            spec.redundancy * 100.0,
            stats.redundant_fraction * 100.0,
            scaled.mean_distance,
            stats.mean_duplicate_distance,
            spec.chunk_size / 1024,
        );
        rows.push(format!(
            "{},{},{},{:.4},{:.4},{:.0},{:.0},{}",
            spec.name,
            scaled.total,
            stats.total,
            spec.redundancy,
            stats.redundant_fraction,
            scaled.mean_distance,
            stats.mean_duplicate_distance,
            spec.chunk_size
        ));
    }

    println!("\npaper targets at full scale:");
    println!("  Web Server   2,094,832 fps, 18% redundant, distance 10,781");
    println!("  Home Dir     2,501,186 fps, 37% redundant, distance 26,326");
    println!("  Mail Server 24,122,047 fps, 85% redundant, distance 246,253");
    println!("  Time machine 13,146,417 fps, 17% redundant, distance 1,004,899");

    write_csv(
        "table1",
        "workload,fps_target,fps_measured,redundancy_target,redundancy_measured,distance_target,distance_measured,chunk_bytes",
        &rows,
    );
}
