//! Extension — elastic membership under live traffic.
//!
//! The paper names dynamic resource scaling as future work; this harness
//! measures it. A paced multi-client fingerprint load (K threads, each
//! replaying fresh workload rounds through `lookup_insert_batch`) runs
//! continuously while the cluster, mid-run:
//!
//! 1. **joins** a node (`add_node`: install-first epoch swap, dual-read,
//!    chunked online migration), then
//! 2. **drains** one of the original nodes (`drain_node`: migrate out,
//!    evacuate, verify empty by scan, decommission).
//!
//! A sampler thread bins completed lookups into a throughput timeline
//! (`results/ext_elastic_scaling.csv`, one row per bin with its phase),
//! and the summary (`BENCH_elastic_scaling.json`) reports sustained
//! throughput during each membership change against the steady state
//! around it, the two `RebalanceReport`s (moved entries, chunk count,
//! wall-clock), and the drained node's final scan count. The headline
//! checks: throughput during join and drain stays ≥ 0.5× the preceding
//! steady state, recovers after, and the drain leaves zero entries
//! behind. Set `SHHC_ELASTIC_QUICK=1` for a few-second CI smoke run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shhc::{ClusterConfig, NodeConfig, RebalanceReport, ShhcCluster};
use shhc_bench::{banner, elastic_quick, write_bench_json, write_csv};
use shhc_flash::FlashConfig;
use shhc_types::NodeId;
use shhc_workload::MultiClientSpec;

struct Scenario {
    clients: usize,
    /// Fingerprints per workload round per client.
    round_size: usize,
    /// Fingerprints per submitted batch.
    batch: usize,
    /// Pacing gap between a client's batches.
    gap: Duration,
    /// Simulated per-fingerprint device latency (wall-clock).
    service_delay: Duration,
    /// Resident fingerprints preloaded before the run.
    preload: usize,
    /// Steady-state window between membership events.
    steady: Duration,
    /// Timeline bin width.
    bin: Duration,
    migration_chunk: usize,
}

impl Scenario {
    fn new(quick: bool) -> Self {
        if quick {
            Scenario {
                clients: 3,
                round_size: 1_024,
                batch: 128,
                gap: Duration::from_millis(20),
                service_delay: Duration::from_micros(120),
                preload: 4_000,
                steady: Duration::from_millis(250),
                bin: Duration::from_millis(25),
                migration_chunk: 128,
            }
        } else {
            Scenario {
                clients: 8,
                round_size: 4_096,
                batch: 128,
                gap: Duration::from_millis(30),
                service_delay: Duration::from_micros(80),
                preload: 32_000,
                steady: Duration::from_millis(900),
                bin: Duration::from_millis(50),
                migration_chunk: 128,
            }
        }
    }
}

/// One membership event on the measured timeline, in ms since start.
struct Event {
    start_ms: f64,
    end_ms: f64,
    report: RebalanceReport,
}

fn mean_rate(samples: &[(f64, u64)], from_ms: f64, to_ms: f64) -> f64 {
    // Cumulative counts: rate over a window is the count delta across it.
    let at = |t: f64| -> u64 {
        samples
            .iter()
            .take_while(|(ms, _)| *ms <= t)
            .last()
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let span_s = (to_ms - from_ms).max(1.0) / 1e3;
    (at(to_ms).saturating_sub(at(from_ms))) as f64 / span_s
}

fn main() {
    let quick = elastic_quick();
    let s = Scenario::new(quick);
    banner(
        "Extension — elastic membership: join and drain under live traffic",
        "epoch-versioned ring: install-first swap, dual-read, chunked online \
         migration; throughput sustained through membership changes",
    );
    println!(
        "mode: {}, {} clients x {}-fp batches ({} µs gap), {} µs device \
         latency, {} preloaded fingerprints\n",
        if quick { "quick (CI smoke)" } else { "full" },
        s.clients,
        s.batch,
        s.gap.as_micros(),
        s.service_delay.as_micros(),
        s.preload
    );

    let mut node_config = NodeConfig::small_test();
    node_config.flash = FlashConfig::medium_test();
    node_config.cache_capacity = 16_384;
    node_config.bloom_expected = 500_000;
    node_config.service_delay = s.service_delay;
    let cluster = ShhcCluster::spawn(
        ClusterConfig::new(3, node_config).with_migration_chunk(s.migration_chunk),
    )
    .expect("spawn cluster");

    // Resident population: what the membership changes must migrate.
    let preload: Vec<_> = (0..s.preload as u64)
        .map(|i| {
            shhc_types::Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
        })
        .collect();
    for window in preload.chunks(2_048) {
        cluster.lookup_insert_batch(window).expect("preload");
    }

    // Paced multi-client load: each client walks fresh workload rounds.
    let spec = MultiClientSpec::open_loop(s.clients, s.round_size)
        .with_redundancy(0.5)
        .with_seed(0xE1A5_71C5);
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut clients = Vec::new();
    for c in 0..s.clients {
        let cluster = cluster.clone();
        let spec = spec.clone();
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        let batch = s.batch;
        let gap = s.gap;
        clients.push(std::thread::spawn(move || {
            let mut round = 0u64;
            'run: loop {
                let shard = spec.round_shard(c, round);
                round += 1;
                for window in shard.chunks(batch) {
                    if stop.load(Ordering::Relaxed) {
                        break 'run;
                    }
                    cluster.lookup_insert_batch(window).expect("lookup");
                    completed.fetch_add(window.len() as u64, Ordering::Relaxed);
                    std::thread::sleep(gap);
                }
            }
        }));
    }

    // Sampler: cumulative completed lookups per bin.
    let sampler = {
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        let bin = s.bin;
        std::thread::spawn(move || {
            let mut samples: Vec<(f64, u64)> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(bin);
                samples.push((
                    start.elapsed().as_secs_f64() * 1e3,
                    completed.load(Ordering::Relaxed),
                ));
            }
            samples
        })
    };

    // The membership schedule, with steady windows around each event.
    let mut events = Vec::new();
    std::thread::sleep(s.steady);
    {
        let t0 = start.elapsed().as_secs_f64() * 1e3;
        let (id, report) = cluster.add_node().expect("join");
        let t1 = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "join   +{id}: moved {} entries in {} chunks over {:.0} ms",
            report.moved,
            report.chunks,
            report.wall_clock.as_secs_f64() * 1e3
        );
        events.push(Event {
            start_ms: t0,
            end_ms: t1,
            report,
        });
    }
    std::thread::sleep(s.steady);
    {
        let victim = NodeId::new(1);
        let t0 = start.elapsed().as_secs_f64() * 1e3;
        let report = cluster.drain_node(victim).expect("drain");
        let t1 = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "drain  -{victim}: moved {} entries in {} chunks over {:.0} ms \
             (final scan: {} entries)",
            report.moved,
            report.chunks,
            report.wall_clock.as_secs_f64() * 1e3,
            report.post_scan_entries
        );
        events.push(Event {
            start_ms: t0,
            end_ms: t1,
            report,
        });
    }
    std::thread::sleep(s.steady);
    stop.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().expect("client thread");
    }
    let samples = sampler.join().expect("sampler thread");
    let end_ms = start.elapsed().as_secs_f64() * 1e3;

    // Phase windows: steady slices between events (first quarter of the
    // initial window dropped as warmup).
    let join = &events[0];
    let drain = &events[1];
    let steady_before = mean_rate(&samples, join.start_ms * 0.25, join.start_ms);
    let during_join = mean_rate(&samples, join.start_ms, join.end_ms);
    let between = mean_rate(&samples, join.end_ms, drain.start_ms);
    let during_drain = mean_rate(&samples, drain.start_ms, drain.end_ms);
    let after = mean_rate(&samples, drain.end_ms, end_ms);
    let join_ratio = during_join / steady_before.max(1.0);
    let drain_ratio = during_drain / between.max(1.0);
    let recovery = after / steady_before.max(1.0);

    println!(
        "\n{:>12} {:>14}   (sustained lookups/second)",
        "phase", "rate"
    );
    for (name, rate) in [
        ("steady", steady_before),
        ("join", during_join),
        ("steady", between),
        ("drain", during_drain),
        ("steady", after),
    ] {
        println!("{name:>12} {rate:>14.0}");
    }
    println!("\nchecks:");
    println!("  during join:  {join_ratio:.2}x of preceding steady (target ≥ 0.5x)");
    println!("  during drain: {drain_ratio:.2}x of preceding steady (target ≥ 0.5x)");
    println!("  recovery:     {recovery:.2}x of initial steady (target ≥ 0.8x)");
    println!(
        "  drained node final scan: {} entries (target 0)",
        drain.report.post_scan_entries
    );

    // Timeline CSV: per-bin rate plus the phase the bin falls in.
    let phase_of = |ms: f64| -> &'static str {
        if ms < join.start_ms {
            "steady_before"
        } else if ms < join.end_ms {
            "join"
        } else if ms < drain.start_ms {
            "steady_between"
        } else if ms < drain.end_ms {
            "drain"
        } else {
            "steady_after"
        }
    };
    let mut rows = Vec::with_capacity(samples.len());
    let mut prev = (0.0f64, 0u64);
    for &(ms, count) in &samples {
        let rate = (count - prev.1) as f64 / ((ms - prev.0).max(1.0) / 1e3);
        rows.push(format!("{ms:.0},{rate:.0},{}", phase_of(ms)));
        prev = (ms, count);
    }
    write_csv(
        if quick {
            "ext_elastic_scaling_quick"
        } else {
            "ext_elastic_scaling"
        },
        "elapsed_ms,lookups_per_sec,phase",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_elastic_scaling.json (full-run record)");
        return;
    }

    let report_json = |e: &Event| {
        format!(
            "{{\"moved\": {}, \"scanned\": {}, \"chunks\": {}, \
             \"wall_clock_ms\": {:.1}, \"from_epoch\": {}, \"to_epoch\": {}, \
             \"post_scan_entries\": {}}}",
            e.report.moved,
            e.report.scanned,
            e.report.chunks,
            e.report.wall_clock.as_secs_f64() * 1e3,
            e.report.from_epoch,
            e.report.to_epoch,
            e.report.post_scan_entries
        )
    };
    write_bench_json(
        "elastic_scaling",
        &format!(
            "{{\n  \"bench\": \"ext_elastic_scaling\",\n  \"quick\": {quick},\n  \
             \"clients\": {},\n  \"batch_size\": {},\n  \"service_delay_us\": {},\n  \
             \"preload\": {},\n  \"rates\": {{\n    \"steady_before\": {steady_before:.0},\n    \
             \"during_join\": {during_join:.0},\n    \"steady_between\": {between:.0},\n    \
             \"during_drain\": {during_drain:.0},\n    \"steady_after\": {after:.0}\n  }},\n  \
             \"join_ratio\": {join_ratio:.3},\n  \"drain_ratio\": {drain_ratio:.3},\n  \
             \"recovery_ratio\": {recovery:.3},\n  \
             \"join_report\": {},\n  \"drain_report\": {},\n  \
             \"drained_node_entries\": {},\n  \
             \"sustained_during_join\": {},\n  \"sustained_during_drain\": {},\n  \
             \"recovered_after\": {},\n  \"drain_verified_empty\": {}\n}}\n",
            s.clients,
            s.batch,
            s.service_delay.as_micros(),
            s.preload,
            report_json(join),
            report_json(drain),
            drain.report.post_scan_entries,
            join_ratio >= 0.5,
            drain_ratio >= 0.5,
            recovery >= 0.8,
            drain.report.post_scan_entries == 0,
        ),
    );
}
