//! Extension C — partitioning ablation: consistent hashing (by vnode
//! count) vs the paper's literal static ranges vs naive modulo, on load
//! balance and on disruption when the cluster grows.

use shhc_bench::{banner, scale, write_csv};
use shhc_ring::{
    load_distribution, moved_fraction, ConsistentHashRing, ModuloPartition, StaticRangePartition,
};
use shhc_workload::{mix, presets};

fn coefficient_of_variation(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

fn main() {
    let scale = (scale() * 4).max(1);
    banner(
        "Extension C — partitioning strategies: balance and growth disruption",
        "the ring balances like static ranges but moves only ~1/(n+1) of keys on growth",
    );
    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(scale).generate())
        .collect();
    let keys: Vec<u64> = mix(&traces, 7).iter().map(|fp| fp.route_key()).collect();
    println!(
        "routing {} real fingerprint keys over 4 nodes\n",
        keys.len()
    );

    let mut rows = Vec::new();
    println!(
        "{:<22} {:>12} {:>18}",
        "strategy", "balance CoV", "moved on 4→5 grow"
    );

    for vnodes in [1u32, 8, 64, 256] {
        let ring4 = ConsistentHashRing::with_nodes(4, vnodes);
        let mut ring5 = ring4.clone();
        ring5.add_node(shhc_types::NodeId::new(4));
        let cov = coefficient_of_variation(&load_distribution(&ring4, keys.iter().copied()));
        let moved = moved_fraction(&ring4, &ring5, keys.iter().copied());
        let name = format!("ring ({vnodes} vnodes)");
        println!("{name:<22} {cov:>12.3} {:>17.1}%", moved * 100.0);
        rows.push(format!("{name},{cov:.4},{moved:.4}"));
    }

    let static4 = StaticRangePartition::new(4);
    let static5 = StaticRangePartition::new(5);
    let cov = coefficient_of_variation(&load_distribution(&static4, keys.iter().copied()));
    let moved = moved_fraction(&static4, &static5, keys.iter().copied());
    println!(
        "{:<22} {cov:>12.3} {:>17.1}%",
        "static ranges",
        moved * 100.0
    );
    rows.push(format!("static ranges,{cov:.4},{moved:.4}"));

    let mod4 = ModuloPartition::new(4);
    let mod5 = ModuloPartition::new(5);
    let cov = coefficient_of_variation(&load_distribution(&mod4, keys.iter().copied()));
    let moved = moved_fraction(&mod4, &mod5, keys.iter().copied());
    println!("{:<22} {cov:>12.3} {:>17.1}%", "modulo", moved * 100.0);
    rows.push(format!("modulo,{cov:.4},{moved:.4}"));

    println!("\nideal growth disruption: 20.0% (exactly the new node's share);");
    println!("static ranges and modulo reshuffle far more, which is why SHHC's");
    println!("'relatively static' DHT still wants consistent hashing for its");
    println!("dynamic-scaling future work.");

    // Chord hop-count context: what full P2P routing would cost.
    println!("\nChord-style routing hops (what SHHC avoids by full routing tables):");
    for n in [4u32, 16, 64, 256] {
        let chord = shhc_ring::FingerTable::new(n);
        println!("  {n:>4} nodes: {:.2} mean hops", chord.mean_hops(4000));
    }

    write_csv(
        "ext_partitioning",
        "strategy,balance_cov,moved_fraction_on_grow",
        &rows,
    );
}
