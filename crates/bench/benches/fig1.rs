//! Figure 1 — "Throughput of fingerprint lookup operations".
//!
//! The paper's motivation simulation: execution time for a fixed set of
//! fingerprint lookups versus the offered request rate, for cluster sizes
//! 1/2/4/8/16. Expected shape: all curves coincide while arrival-bound
//! (time = requests/rate); past a cluster's service capacity the curve
//! flattens at `requests × service / nodes` — so at high rates execution
//! time is a decreasing function of cluster size.

use shhc::motivation::{sweep, MotivationConfig};
use shhc_bench::{banner, fig1_requests, write_csv};

fn main() {
    banner(
        "Figure 1 — execution time vs offered rate, by cluster size",
        "execution time for a fixed request set decreases with node count",
    );

    let total = fig1_requests();
    let node_counts = [1u32, 2, 4, 8, 16];
    let rates: Vec<f64> = [
        2_000.0, 5_000.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0,
    ]
    .to_vec();
    let base = MotivationConfig {
        total_requests: total,
        ..MotivationConfig::default()
    };
    println!(
        "requests = {total}, mean service = {} (node capacity ≈ {:.0}/s)\n",
        base.mean_service,
        1.0 / base.mean_service.as_secs_f64()
    );

    let points = sweep(&node_counts, &rates, base);

    print!("{:>12}", "rate (req/s)");
    for n in node_counts {
        print!(" {:>12}", format!("{n} node(s)"));
    }
    println!("   (execution time, µs — the paper's y-axis)");

    let mut rows = Vec::new();
    for &rate in &rates {
        print!("{rate:>12.0}");
        for &nodes in &node_counts {
            let p = points
                .iter()
                .find(|p| p.nodes == nodes && p.rate_per_sec == rate)
                .expect("swept point");
            print!(" {:>12.0}", p.execution_time.as_micros_f64());
            rows.push(format!("{nodes},{rate},{}", p.execution_time.as_micros()));
        }
        println!();
    }

    // The paper's qualitative claims, checked mechanically.
    let at = |nodes: u32, rate: f64| {
        points
            .iter()
            .find(|p| p.nodes == nodes && p.rate_per_sec == rate)
            .expect("point")
            .execution_time
            .as_secs_f64()
    };
    let low_spread = (at(16, 2_000.0) - at(1, 2_000.0)).abs() / at(1, 2_000.0);
    let high_gain = at(1, 100_000.0) / at(16, 100_000.0);
    println!("\nchecks:");
    println!(
        "  low-rate curves coincide: spread {:.1}% (expect ≈0)",
        low_spread * 100.0
    );
    println!(
        "  100k req/s speedup 1→16 nodes: {high_gain:.1}x (expect ≫1, saturating at rate-bound)"
    );

    write_csv("fig1", "nodes,rate_per_sec,execution_time_us", &rows);
}
