//! Extension D — fault tolerance (paper future work): replication factor
//! vs ingest cost, and lookup availability across a node crash, measured
//! on the real multi-threaded cluster.

use std::time::Instant;

use shhc::{ClusterConfig, NodeConfig, ShhcCluster};
use shhc_bench::{banner, write_csv};
use shhc_flash::FlashConfig;
use shhc_types::{Fingerprint, NodeId};

fn stream(n: u64) -> Vec<Fingerprint> {
    (0..n)
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

fn node_config() -> NodeConfig {
    NodeConfig {
        flash: FlashConfig::medium_test(),
        cache_capacity: 8192,
        bloom_expected: 200_000,
        ..NodeConfig::small_test()
    }
}

fn main() {
    banner(
        "Extension D — replication: ingest cost and crash availability",
        "replication buys availability at a proportional write cost (paper future work)",
    );
    let fps = stream(60_000);
    println!("4 threaded nodes, {} fingerprints, batch 256\n", fps.len());

    println!(
        "{:>12} {:>14} {:>16} {:>22}",
        "replication", "ingest (ms)", "total entries", "found after 1 crash"
    );
    let mut rows = Vec::new();
    for replication in [1usize, 2, 3] {
        let cluster =
            ShhcCluster::spawn(ClusterConfig::new(4, node_config()).with_replication(replication))
                .expect("spawn");

        let start = Instant::now();
        for window in fps.chunks(256) {
            cluster.lookup_insert_batch(window).expect("ingest");
        }
        let ingest = start.elapsed();
        let entries = cluster.stats().expect("stats").total_entries();

        cluster.kill_node(NodeId::new(2)).expect("kill");
        let found = match replication {
            1 => {
                // Without replication some ranges are simply gone.
                let mut found = 0usize;
                for window in fps.chunks(256) {
                    if let Ok(exists) = cluster.lookup_insert_batch(window) {
                        found += exists.iter().filter(|e| **e).count();
                    }
                }
                found
            }
            _ => {
                let mut found = 0usize;
                for window in fps.chunks(256) {
                    let exists = cluster.lookup_insert_batch(window).expect("failover");
                    found += exists.iter().filter(|e| **e).count();
                }
                found
            }
        };

        println!(
            "{replication:>12} {:>14.0} {entries:>16} {:>17} /{}",
            ingest.as_secs_f64() * 1e3,
            found,
            fps.len()
        );
        rows.push(format!(
            "{replication},{:.0},{entries},{found}",
            ingest.as_secs_f64() * 1e3
        ));
        cluster.shutdown().expect("shutdown");
    }

    println!("\nentries scale ≈ r× (each fingerprint on r nodes); with r ≥ 2 a");
    println!("single crash is fully masked, with r = 1 the dead node's share");
    println!("of the space cannot answer (Unavailable) until it is restored.");

    write_csv(
        "ext_replication",
        "replication,ingest_ms,total_entries,found_after_crash",
        &rows,
    );
}
