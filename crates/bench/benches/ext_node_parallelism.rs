//! Extension — intra-node parallelism: shard-per-worker hybrid nodes.
//!
//! The paper scales SHHC across machines but serves each hybrid hash
//! node from one sequential thread, so a node can never use more than
//! one core. This harness measures *real* wall-clock throughput of a
//! **single node** whose per-fingerprint service time is a true sleep
//! (`NodeConfig::service_delay`, standing in for device latency), as the
//! node's shard count sweeps 1 → 8:
//!
//! - `shards = 1` — the paper's node, one server thread (the measured
//!   baseline, same pattern as `DataPlane::Sequential`),
//! - `shards = S` — the shard-per-worker node: every frame splits into
//!   per-shard sub-frames that sleep and execute **concurrently** on S
//!   worker threads, and a frame costs ≈ its largest per-shard share.
//!
//! A second measurement drives two clients — one submitting deep frames,
//! one submitting 1-fingerprint frames — and reports the small client's
//! mean latency: on the baseline it queues head-of-line behind every
//! deep frame; on the sharded node it is answered in ≈ its own service
//! time. Emits `results/ext_node_parallelism.csv` plus
//! `BENCH_node_parallelism.json` at the workspace root. Set
//! `SHHC_NODE_PARALLELISM_QUICK=1` for a sub-second CI smoke run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shhc::{ClusterConfig, NodeConfig, ShhcCluster};
use shhc_bench::{banner, node_parallelism_quick, write_bench_json, write_csv};
use shhc_flash::FlashConfig;
use shhc_types::Fingerprint;
use shhc_workload::spread_batches;

fn node_config(shards: u32, service_delay: Duration) -> NodeConfig {
    let mut config = NodeConfig::small_test();
    config.flash = FlashConfig::medium_test();
    config.cache_capacity = 16_384;
    config.bloom_expected = 500_000;
    config.service_delay = service_delay;
    config.shards = shards;
    config
}

struct Measured {
    lookups: u64,
    elapsed: Duration,
    lookups_per_sec: f64,
}

/// One node, `shards` shards: an ingest pass (all new) followed by a
/// dedup pass (all duplicates) over the same batches — the same total
/// work at every shard count.
fn drive(shards: u32, stream: &[Vec<Fingerprint>], service_delay: Duration) -> Measured {
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, node_config(shards, service_delay)))
        .expect("spawn cluster");
    let start = Instant::now();
    for batch in stream {
        let exists = cluster.lookup_insert_batch(batch).expect("lookup");
        debug_assert!(exists.iter().all(|e| !e), "ingest pass must be all-new");
    }
    for batch in stream {
        let exists = cluster.lookup_insert_batch(batch).expect("lookup");
        assert!(exists.iter().all(|e| *e), "dedup pass must be all-hits");
    }
    let elapsed = start.elapsed();
    cluster.shutdown().expect("shutdown");
    let lookups = 2 * stream.iter().map(|b| b.len() as u64).sum::<u64>();
    Measured {
        lookups,
        elapsed,
        lookups_per_sec: lookups as f64 / elapsed.as_secs_f64(),
    }
}

/// Two clients against one node: a hog streaming deep frames and a
/// latency-sensitive client submitting 1-fingerprint frames. Returns the
/// small client's mean frame latency.
fn small_frame_latency(
    shards: u32,
    deep_size: usize,
    probes: usize,
    service_delay: Duration,
) -> Duration {
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, node_config(shards, service_delay)))
        .expect("spawn cluster");
    let stop = Arc::new(AtomicBool::new(false));
    let hog = {
        let cluster = cluster.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<Fingerprint> = (0..deep_size as u64)
                    .map(|i| {
                        shhc_workload::spread_fingerprint(1_000_000 + k * deep_size as u64 + i)
                    })
                    .collect();
                k += 1;
                cluster.lookup_insert_batch(&batch).expect("deep lookup");
            }
        })
    };
    // Let the hog saturate the node before probing.
    std::thread::sleep(service_delay * deep_size as u32);
    let mut total = Duration::ZERO;
    for p in 0..probes {
        let probe = vec![shhc_workload::spread_fingerprint(9_000_000 + p as u64)];
        let start = Instant::now();
        cluster.lookup_insert_batch(&probe).expect("small lookup");
        total += start.elapsed();
    }
    stop.store(true, Ordering::Relaxed);
    hog.join().expect("hog thread");
    cluster.shutdown().expect("shutdown");
    total / probes as u32
}

fn main() {
    let quick = node_parallelism_quick();
    let (shard_counts, batches, batch_size, delay, probes) = if quick {
        (
            vec![1u32, 2, 4],
            3usize,
            64usize,
            Duration::from_micros(200),
            4usize,
        )
    } else {
        (
            vec![1, 2, 4, 8],
            10usize,
            512usize,
            Duration::from_micros(100),
            24usize,
        )
    };
    banner(
        "Extension — intra-node parallelism: shard-per-worker hybrid nodes",
        "a node's throughput scales with its shard count (multi-core execution \
         the paper's sequential node leaves on the table), and small frames \
         stop waiting head-of-line behind deep ones",
    );
    println!(
        "mode: {}, 1 node, {batches} batches x {batch_size} fingerprints x 2 passes, \
         {} µs simulated device latency per fingerprint\n",
        if quick { "quick (CI smoke)" } else { "full" },
        delay.as_micros()
    );
    let stream = spread_batches(batches, batch_size);

    println!(
        "{:>7} {:>18} {:>9}   (sustained lookups/second, one node)",
        "shards", "throughput", "speedup"
    );
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    let mut baseline = None;
    for &shards in &shard_counts {
        let m = drive(shards, &stream, delay);
        let base = *baseline.get_or_insert(m.lookups_per_sec);
        let speedup = m.lookups_per_sec / base;
        println!("{shards:>7} {:>18.0} {speedup:>8.2}x", m.lookups_per_sec);
        rows.push(format!(
            "{shards},{batches},{batch_size},{},{},{:.3},{:.0},{speedup:.3}",
            delay.as_micros(),
            m.lookups,
            m.elapsed.as_secs_f64() * 1e3,
            m.lookups_per_sec
        ));
        summary.push((shards, m.lookups_per_sec, speedup));
    }

    // Head-of-line latency: deep frames vs a 1-fingerprint client.
    let deep_size = batch_size.min(128);
    let hol_base = small_frame_latency(1, deep_size, probes, delay);
    let hol_sharded = small_frame_latency(4, deep_size, probes, delay);
    println!(
        "\nsmall-frame latency behind {deep_size}-deep frames: \
         {:.2} ms single-threaded vs {:.2} ms with 4 shards",
        hol_base.as_secs_f64() * 1e3,
        hol_sharded.as_secs_f64() * 1e3
    );

    let at = |n: u32| summary.iter().find(|s| s.0 == n);
    println!("\nchecks:");
    if let Some(&(_, _, speedup)) = at(4) {
        println!("  4-shard vs single-threaded node: {speedup:.2}x (target: ≥ 2x)");
    }
    if let Some(&(_, _, speedup)) = at(8) {
        println!("  8-shard vs single-threaded node: {speedup:.2}x (paper: near-linear)");
    }

    // Quick (smoke) runs write under a distinct name so they can never
    // clobber the committed full-run artifacts.
    write_csv(
        if quick {
            "ext_node_parallelism_quick"
        } else {
            "ext_node_parallelism"
        },
        "shards,batches,batch_size,service_delay_us,total_lookups,elapsed_ms,lookups_per_sec,speedup",
        &rows,
    );
    if quick {
        println!("quick mode: skipping BENCH_node_parallelism.json (full-run record)");
        return;
    }
    let entries: Vec<String> = summary
        .iter()
        .map(|(s, tput, x)| {
            format!("    {{\"shards\": {s}, \"lookups_per_sec\": {tput:.0}, \"speedup\": {x:.3}}}")
        })
        .collect();
    write_bench_json(
        "node_parallelism",
        &format!(
            "{{\n  \"bench\": \"ext_node_parallelism\",\n  \"quick\": {quick},\n  \
             \"nodes\": 1,\n  \"batches\": {batches},\n  \"batch_size\": {batch_size},\n  \
             \"service_delay_us\": {},\n  \"deep_frame_size\": {deep_size},\n  \
             \"small_frame_latency_ms_single\": {:.3},\n  \
             \"small_frame_latency_ms_sharded\": {:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
            delay.as_micros(),
            hol_base.as_secs_f64() * 1e3,
            hol_sharded.as_secs_f64() * 1e3,
            entries.join(",\n")
        ),
    );
}
