//! Shared plumbing for the experiment harnesses.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index) and writes a CSV sidecar
//! under `results/` at the workspace root.
//!
//! Scale knobs (environment variables):
//! - `SHHC_SCALE` — divisor applied to the Table I workloads (default
//!   16; 1 = the paper's full trace sizes),
//! - `SHHC_FIG1_REQUESTS` — request count for the Figure 1 simulator
//!   (default 100 000, the paper's value).

use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;

/// Workload scale divisor (`SHHC_SCALE`, default 16).
pub fn scale() -> usize {
    std::env::var("SHHC_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(16)
}

/// Figure-1 request count (`SHHC_FIG1_REQUESTS`, default 100 000).
pub fn fig1_requests() -> u64 {
    std::env::var("SHHC_FIG1_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(100_000)
}

/// Quick mode for the wall-clock scaling bench (`SHHC_WALLCLOCK_QUICK`):
/// tiny batch counts so CI can smoke-run the harness in under a second.
pub fn wallclock_quick() -> bool {
    env_flag("SHHC_WALLCLOCK_QUICK")
}

/// Quick mode for the front-end concurrency bench
/// (`SHHC_FRONTEND_QUICK`): tiny client populations for a CI smoke run.
pub fn frontend_quick() -> bool {
    env_flag("SHHC_FRONTEND_QUICK")
}

/// Quick mode for the elastic-scaling bench (`SHHC_ELASTIC_QUICK`):
/// short phases and a small preload for a CI smoke run.
pub fn elastic_quick() -> bool {
    env_flag("SHHC_ELASTIC_QUICK")
}

/// Quick mode for the intra-node parallelism bench
/// (`SHHC_NODE_PARALLELISM_QUICK`): tiny streams and shard sweep for a
/// CI smoke run.
pub fn node_parallelism_quick() -> bool {
    env_flag("SHHC_NODE_PARALLELISM_QUICK")
}

/// Quick mode for the crash-recovery bench (`SHHC_RECOVERY_QUICK`):
/// small store sizes and delta sweeps for a CI smoke run.
pub fn recovery_quick() -> bool {
    env_flag("SHHC_RECOVERY_QUICK")
}

/// Quick mode for the index-backend shootout bench
/// (`SHHC_MAP_SHOOTOUT_QUICK`): tiny op streams and reader sweep for a
/// CI smoke run.
pub fn map_shootout_quick() -> bool {
    env_flag("SHHC_MAP_SHOOTOUT_QUICK")
}

/// Quick mode for the self-tuning bench (`SHHC_ADAPTIVE_QUICK`): short
/// traces and a reduced static grid for a CI smoke run.
pub fn adaptive_quick() -> bool {
    env_flag("SHHC_ADAPTIVE_QUICK")
}

/// Quick mode for the overload/admission bench (`SHHC_OVERLOAD_QUICK`):
/// a short run at a reduced offered-load grid for a CI smoke run.
pub fn overload_quick() -> bool {
    env_flag("SHHC_OVERLOAD_QUICK")
}

/// Quick mode for the restore-at-scale bench (`SHHC_RESTORE_QUICK`):
/// tiny payloads and client counts for a CI smoke run.
pub fn restore_quick() -> bool {
    env_flag("SHHC_RESTORE_QUICK")
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The workspace root (where `BENCH_*.json` summaries land).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The `results/` directory at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a machine-readable summary as `BENCH_<name>.json` at the
/// workspace root (the cross-PR perf-trajectory record).
pub fn write_bench_json(name: &str, json: &str) {
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json).expect("write bench json");
    println!("→ wrote {}", path.display());
}

/// Writes `rows` (plus a header) as `results/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut file = File::create(&path).expect("create csv");
    writeln!(file, "{header}").expect("write csv header");
    for row in rows {
        writeln!(file, "{row}").expect("write csv row");
    }
    println!("\n→ wrote {}", path.display());
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("════════════════════════════════════════════════════════════════");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("════════════════════════════════════════════════════════════════");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        // Env-independent sanity: parsing falls back to defaults.
        assert!(scale() >= 1);
        assert!(fig1_requests() >= 1);
    }
}
