//! O(1) least-recently-used cache.

use std::collections::HashMap;
use std::hash::BuildHasher;

use shhc_types::FingerprintBuildHasher;

use crate::stats::RECENT_HALF_LIFE;
use crate::{Cache, CacheKey, CacheStats, WindowedHitRate};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// The paper's per-node RAM cache: a hash map for O(1) lookup plus an
/// intrusive doubly-linked list (over a slab of slots) for O(1) recency
/// maintenance and eviction.
///
/// "Node N maintains a least recently used (LRU) cache list in RAM. If the
/// LRU is full, it discards the least recently used fingerprints."
/// — SHHC §III.B
///
/// The index defaults to [`FingerprintBuildHasher`] — cache keys are
/// content hashes (or ids derived from them), so SipHash's seeded rounds
/// buy nothing on this hot path. Pass another [`BuildHasher`] via
/// [`LruCache::with_hasher`] to override.
///
/// # Examples
///
/// ```
/// use shhc_cache::{Cache, LruCache};
///
/// let mut cache = LruCache::new(3);
/// for i in 0..5u32 {
///     cache.insert(i, i * 10);
/// }
/// // 0 and 1 were evicted.
/// assert!(!cache.peek(&0) && !cache.peek(&1));
/// assert_eq!(cache.get(&4), Some(&40));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V, S = FingerprintBuildHasher> {
    map: HashMap<K, usize, S>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
    stats: CacheStats,
    recent: WindowedHitRate,
}

impl<K: CacheKey, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_hasher(capacity, FingerprintBuildHasher)
    }
}

impl<K: CacheKey, V, S: BuildHasher> LruCache<K, V, S> {
    /// Like [`LruCache::new`] but with an explicit hash-state builder.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_hasher(capacity: usize, hasher: S) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        LruCache {
            map: HashMap::with_hasher(hasher),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
            recent: WindowedHitRate::new(RECENT_HALF_LIFE),
        }
    }

    fn slot(&self, idx: usize) -> &Slot<K, V> {
        self.slots[idx].as_ref().expect("linked slot is occupied")
    }

    fn slot_mut(&mut self, idx: usize) -> &mut Slot<K, V> {
        self.slots[idx].as_mut().expect("linked slot is occupied")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let head = self.head;
            let s = self.slot_mut(idx);
            s.prev = NIL;
            s.next = head;
        }
        if self.head != NIL {
            let old_head = self.head;
            self.slot_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_back(&mut self, idx: usize) {
        {
            let tail = self.tail;
            let s = self.slot_mut(idx);
            s.next = NIL;
            s.prev = tail;
        }
        if self.tail != NIL {
            let old_tail = self.tail;
            self.slot_mut(old_tail).next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn alloc(&mut self, slot: Slot<K, V>) -> usize {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i].is_none());
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    fn release(&mut self, idx: usize) -> Slot<K, V> {
        self.free.push(idx);
        self.slots[idx].take().expect("released slot was occupied")
    }

    /// Removes and returns the least-recently-used entry.
    ///
    /// Exposed so composite policies (SLRU, 2Q) and the node's destage
    /// path can drain in eviction order.
    ///
    /// # Examples
    ///
    /// ```
    /// use shhc_cache::{Cache, LruCache};
    /// let mut c = LruCache::new(4);
    /// c.insert('a', 1);
    /// c.insert('b', 2);
    /// assert_eq!(c.pop_lru(), Some(('a', 1)));
    /// ```
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        self.unlink(idx);
        let slot = self.release(idx);
        self.map.remove(&slot.key);
        Some((slot.key, slot.value))
    }

    /// Returns the least-recently-used key without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slot(self.tail).key)
        }
    }

    /// Looks up without updating recency (unlike [`Cache::get`]).
    pub fn peek_value(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slot(idx).value)
    }

    /// Iterates over entries from most- to least-recently used.
    pub fn iter(&self) -> Iter<'_, K, V, S> {
        Iter {
            cache: self,
            cursor: self.head,
        }
    }
}

/// Iterator over cache entries in recency order (MRU first); created by
/// [`LruCache::iter`].
#[derive(Debug)]
pub struct Iter<'a, K, V, S = FingerprintBuildHasher> {
    cache: &'a LruCache<K, V, S>,
    cursor: usize,
}

impl<'a, K: CacheKey, V, S: BuildHasher> Iterator for Iter<'a, K, V, S> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let slot = self.cache.slot(self.cursor);
        self.cursor = slot.next;
        Some((&slot.key, &slot.value))
    }
}

impl<K: CacheKey, V, S: BuildHasher> Cache<K, V> for LruCache<K, V, S> {
    fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.recent.observe(true);
                self.touch(idx);
                Some(&self.slot(idx).value)
            }
            None => {
                self.stats.misses += 1;
                self.recent.observe(false);
                None
            }
        }
    }

    fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stats.insertions += 1;
        if let Some(&idx) = self.map.get(&key) {
            self.slot_mut(idx).value = value;
            self.touch(idx);
            return None;
        }

        let evicted = if self.map.len() == self.capacity {
            self.stats.evictions += 1;
            self.pop_lru()
        } else {
            None
        };

        let idx = self.alloc(Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Links the new entry at the *tail* (LRU end): a full cache evicts
    /// its real LRU once, then every later cold insert replaces the
    /// previous cold entry — a scan occupies exactly one slot.
    fn insert_cold(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stats.insertions += 1;
        if let Some(&idx) = self.map.get(&key) {
            self.slot_mut(idx).value = value;
            return None;
        }

        let evicted = if self.map.len() == self.capacity {
            self.stats.evictions += 1;
            self.pop_lru()
        } else {
            None
        };

        let idx = self.alloc(Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_back(idx);
        evicted
    }

    fn peek_value(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slot(idx).value)
    }

    fn peek(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let slot = self.release(idx);
        Some(slot.value)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        assert!(capacity > 0, "cache capacity must be nonzero");
        while self.map.len() > capacity {
            self.stats.evictions += 1;
            self.pop_lru();
        }
        self.capacity = capacity;
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn recent_hit_ratio(&self) -> f64 {
        self.recent.hit_ratio()
    }

    fn recent_misses(&self) -> f64 {
        self.recent.misses()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evicts_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.insert(4, "d");
        assert_eq!(evicted, Some((2, "b")));
        assert!(c.peek(&1) && c.peek(&3) && c.peek(&4));
    }

    #[test]
    fn update_existing_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn remove_then_reinsert() {
        let mut c = LruCache::new(2);
        c.insert('x', 1);
        c.insert('y', 2);
        assert_eq!(c.remove(&'x'), Some(1));
        assert_eq!(c.len(), 1);
        c.insert('z', 3);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&'y') && c.peek(&'z'));
        assert_eq!(c.remove(&'x'), None);
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1); // order now (MRU) 1,3,2 (LRU)
        assert_eq!(c.pop_lru().map(|e| e.0), Some(2));
        assert_eq!(c.pop_lru().map(|e| e.0), Some(3));
        assert_eq!(c.pop_lru().map(|e| e.0), Some(1));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_is_mru_first() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&2);
        let order: Vec<i32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn peek_does_not_change_order() {
        let mut c = LruCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        assert!(c.peek(&1));
        assert_eq!(c.peek_value(&1), Some(&()));
        assert_eq!(c.peek_lru(), Some(&1));
        c.insert(3, ()); // must evict 1 (peek didn't touch it)
        assert!(!c.peek(&1));
    }

    #[test]
    fn insert_cold_links_at_lru_end() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1); // order (MRU) 1,3,2 (LRU)
                   // Full: the first cold insert evicts the true LRU…
        assert_eq!(c.insert_cold(10, ()).map(|e| e.0), Some(2));
        // …and every further cold insert churns only the cold slot.
        assert_eq!(c.insert_cold(11, ()).map(|e| e.0), Some(10));
        assert_eq!(c.insert_cold(12, ()).map(|e| e.0), Some(11));
        assert!(c.peek(&1) && c.peek(&3), "warm entries survive the scan");
        let order: Vec<i32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![1, 3, 12]);
    }

    #[test]
    fn insert_cold_updates_resident_value_without_touch() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // 1 is LRU; a cold update must not refresh its recency.
        assert_eq!(c.insert_cold(1, 11), None);
        assert_eq!(c.peek_value(&1), Some(&11));
        c.insert(3, 30);
        assert!(!c.peek(&1), "cold update must not have touched 1");
    }

    #[test]
    fn peek_value_is_stat_silent() {
        let mut c = LruCache::new(2);
        c.insert(1, ());
        let before = c.stats();
        assert_eq!(Cache::peek_value(&c, &1), Some(&()));
        assert!(Cache::peek_value(&c, &9).is_none());
        let after = c.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
        assert_eq!(c.recent_hit_ratio(), 0.0, "no observations recorded");
    }

    #[test]
    fn stats_track_operations() {
        let mut c = LruCache::new(1);
        c.insert(1, ());
        c.get(&1);
        c.get(&2);
        c.insert(2, ()); // evicts 1
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 2);
    }

    #[test]
    fn clear_preserves_stats() {
        let mut c = LruCache::new(2);
        c.insert(1, ());
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        c.insert(5, ());
        assert!(c.peek(&5));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _: LruCache<u8, u8> = LruCache::new(0);
    }

    #[test]
    fn resize_shrinks_in_lru_order_and_grows_lazily() {
        let mut c = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, ());
        }
        c.get(&0); // order (MRU) 0,3,2,1 (LRU)
        c.resize(2);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&0) && c.peek(&3), "hottest entries survive");
        assert_eq!(c.stats().evictions, 2);
        c.resize(5);
        for k in 10..13 {
            c.insert(k, ());
        }
        assert_eq!(c.len(), 5, "grown capacity is usable immediately");
    }

    #[test]
    fn recent_ratio_tracks_window() {
        let mut c = LruCache::new(2);
        c.insert(1, ());
        for _ in 0..100 {
            c.get(&1);
        }
        assert!(c.recent_hit_ratio() > 0.9);
        for _ in 0..5 {
            c.get(&9);
        }
        assert!(c.recent_misses() > 0.0);
    }

    /// Reference model: Vec kept in recency order.
    #[derive(Default)]
    struct ModelLru {
        cap: usize,
        entries: Vec<(u8, u32)>, // MRU first
    }

    impl ModelLru {
        fn get(&mut self, k: u8) -> Option<u32> {
            let pos = self.entries.iter().position(|(key, _)| *key == k)?;
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            Some(self.entries[0].1)
        }

        fn insert(&mut self, k: u8, v: u32) {
            if let Some(pos) = self.entries.iter().position(|(key, _)| *key == k) {
                self.entries.remove(pos);
            } else if self.entries.len() == self.cap {
                self.entries.pop();
            }
            self.entries.insert(0, (k, v));
        }

        fn remove(&mut self, k: u8) -> Option<u32> {
            let pos = self.entries.iter().position(|(key, _)| *key == k)?;
            Some(self.entries.remove(pos).1)
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Get(u8),
        Insert(u8, u32),
        Remove(u8),
        PopLru,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>()).prop_map(Op::Get),
            (any::<u8>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (any::<u8>()).prop_map(Op::Remove),
            Just(Op::PopLru),
        ]
    }

    proptest! {
        /// The slab implementation behaves exactly like the naive model
        /// under arbitrary operation sequences, and never exceeds capacity.
        #[test]
        fn prop_matches_reference_model(cap in 1usize..8,
                                        ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut real: LruCache<u8, u32> = LruCache::new(cap);
            let mut model = ModelLru { cap, entries: Vec::new() };
            for op in ops {
                match op {
                    Op::Get(k) => {
                        let r = real.get(&k).copied();
                        let m = model.get(k);
                        prop_assert_eq!(r, m);
                    }
                    Op::Insert(k, v) => {
                        real.insert(k, v);
                        model.insert(k, v);
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(real.remove(&k), model.remove(k));
                    }
                    Op::PopLru => {
                        let m = model.entries.pop();
                        prop_assert_eq!(real.pop_lru(), m);
                    }
                }
                prop_assert!(real.len() <= cap);
                prop_assert_eq!(real.len(), model.entries.len());
                let order: Vec<u8> = real.iter().map(|(k, _)| *k).collect();
                let model_order: Vec<u8> = model.entries.iter().map(|(k, _)| *k).collect();
                prop_assert_eq!(order, model_order);
            }
        }
    }
}
