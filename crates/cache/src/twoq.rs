//! The 2Q cache replacement policy (Johnson & Shasha, VLDB '94).

use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasher;

use shhc_types::FingerprintBuildHasher;

use crate::stats::RECENT_HALF_LIFE;
use crate::{Cache, CacheKey, CacheStats, LruCache, WindowedHitRate};

/// 2Q: a FIFO admission queue (`A1in`), a ghost queue of recently evicted
/// keys (`A1out`), and a main LRU (`Am`).
///
/// A key only enters the main LRU on its *second* miss within the ghost
/// window, filtering out one-shot fingerprints even more aggressively than
/// [`crate::SegmentedLruCache`]. Included as an ablation point for the
/// hybrid node's RAM-cache policy.
///
/// # Examples
///
/// ```
/// use shhc_cache::{Cache, TwoQCache};
///
/// let mut c = TwoQCache::new(8);
/// c.insert(1u32, "v");
/// assert!(c.peek(&1));
/// ```
#[derive(Debug, Clone)]
pub struct TwoQCache<K, V, S = FingerprintBuildHasher> {
    a1in: LruCache<K, V, S>,
    /// Ghost keys (no values). `ghost_seq` orders them FIFO; stale deque
    /// entries are skipped lazily.
    a1out: HashMap<K, u64, S>,
    ghost_fifo: VecDeque<(K, u64)>,
    ghost_cap: usize,
    next_seq: u64,
    am: LruCache<K, V, S>,
    stats: CacheStats,
    recent: WindowedHitRate,
}

impl<K: CacheKey, V> TwoQCache<K, V> {
    /// Creates a 2Q cache with `capacity` resident entries, using the
    /// classic split: 25 % `A1in`, 75 % `Am`, ghost list of `capacity/2`
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 4` (the split needs at least one slot per
    /// queue).
    pub fn new(capacity: usize) -> Self {
        Self::with_hasher(capacity, FingerprintBuildHasher)
    }
}

impl<K: CacheKey, V, S: BuildHasher + Clone> TwoQCache<K, V, S> {
    /// Like [`TwoQCache::new`] with an explicit hash-state builder
    /// (cloned into each of the three queues).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 4`.
    pub fn with_hasher(capacity: usize, hasher: S) -> Self {
        assert!(capacity >= 4, "2Q needs capacity ≥ 4");
        let a1in_cap = (capacity / 4).max(1);
        let am_cap = capacity - a1in_cap;
        TwoQCache {
            a1in: LruCache::with_hasher(a1in_cap, hasher.clone()),
            a1out: HashMap::with_hasher(hasher.clone()),
            ghost_fifo: VecDeque::new(),
            ghost_cap: (capacity / 2).max(1),
            next_seq: 0,
            am: LruCache::with_hasher(am_cap, hasher),
            stats: CacheStats::default(),
            recent: WindowedHitRate::new(RECENT_HALF_LIFE),
        }
    }
}

impl<K: CacheKey, V, S: BuildHasher> TwoQCache<K, V, S> {
    fn ghost_insert(&mut self, key: K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.a1out.insert(key.clone(), seq);
        self.ghost_fifo.push_back((key, seq));
        while self.a1out.len() > self.ghost_cap {
            if let Some((k, s)) = self.ghost_fifo.pop_front() {
                // Only evict if this deque entry is the live one.
                if self.a1out.get(&k) == Some(&s) {
                    self.a1out.remove(&k);
                }
            } else {
                break;
            }
        }
    }

    fn ghost_remove(&mut self, key: &K) -> bool {
        self.a1out.remove(key).is_some()
    }

    /// Entries currently in the admission (FIFO) queue.
    pub fn a1in_len(&self) -> usize {
        self.a1in.len()
    }

    /// Entries currently in the main LRU.
    pub fn am_len(&self) -> usize {
        self.am.len()
    }

    /// Keys currently remembered in the ghost list.
    pub fn ghost_len(&self) -> usize {
        self.a1out.len()
    }
}

impl<K: CacheKey, V, S: BuildHasher> Cache<K, V> for TwoQCache<K, V, S> {
    fn get(&mut self, key: &K) -> Option<&V> {
        if self.am.peek(key) {
            self.stats.hits += 1;
            self.recent.observe(true);
            return self.am.get(key);
        }
        // A1in hits do not reorder (it's a FIFO) and do not promote —
        // promotion only happens via the ghost list, per the paper.
        if self.a1in.peek(key) {
            self.stats.hits += 1;
            self.recent.observe(true);
            return self.a1in.peek_value(key);
        }
        self.stats.misses += 1;
        self.recent.observe(false);
        None
    }

    fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stats.insertions += 1;
        if self.am.peek(&key) {
            return self.am.insert(key, value);
        }
        if self.a1in.peek(&key) {
            return self.a1in.insert(key, value);
        }
        // Second chance: a key remembered by the ghost list goes straight
        // to the main LRU.
        if self.ghost_remove(&key) {
            let evicted = self.am.insert(key, value);
            if evicted.is_some() {
                self.stats.evictions += 1;
            }
            return evicted;
        }
        // First sight: admission FIFO; its eviction becomes a ghost.
        let evicted = self.a1in.insert(key, value);
        if let Some((ek, ev)) = evicted {
            self.stats.evictions += 1;
            self.ghost_insert(ek.clone());
            return Some((ek, ev));
        }
        None
    }

    /// Cold entries go to the admission FIFO's eviction end and never
    /// consult or feed the ghost list: a scan cannot earn second-chance
    /// promotions into `Am`, and its victims cannot push real ghosts out
    /// of the re-reference window.
    fn insert_cold(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stats.insertions += 1;
        if self.am.peek(&key) {
            return self.am.insert_cold(key, value);
        }
        if self.a1in.peek(&key) {
            return self.a1in.insert_cold(key, value);
        }
        let evicted = self.a1in.insert_cold(key, value);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    fn peek_value(&self, key: &K) -> Option<&V> {
        self.am
            .peek_value(key)
            .or_else(|| self.a1in.peek_value(key))
    }

    fn peek(&self, key: &K) -> bool {
        self.am.peek(key) || self.a1in.peek(key)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.ghost_remove(key);
        self.a1in.remove(key).or_else(|| self.am.remove(key))
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn capacity(&self) -> usize {
        self.a1in.capacity() + self.am.capacity()
    }

    fn resize(&mut self, capacity: usize) {
        assert!(capacity >= 4, "2Q needs capacity ≥ 4");
        let a1in_cap = (capacity / 4).max(1);
        let am_cap = capacity - a1in_cap;
        let before = self.len();
        // Admission-FIFO overflow becomes ghosts, exactly as a normal
        // capacity eviction would.
        while self.a1in.len() > a1in_cap {
            if let Some((k, _)) = self.a1in.pop_lru() {
                self.ghost_insert(k);
            }
        }
        self.a1in.resize(a1in_cap);
        while self.am.len() > am_cap {
            self.am.pop_lru();
        }
        self.am.resize(am_cap);
        self.ghost_cap = (capacity / 2).max(1);
        while self.a1out.len() > self.ghost_cap {
            match self.ghost_fifo.pop_front() {
                Some((k, s)) => {
                    if self.a1out.get(&k) == Some(&s) {
                        self.a1out.remove(&k);
                    }
                }
                None => break,
            }
        }
        self.stats.evictions += (before - self.len()) as u64;
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn recent_hit_ratio(&self) -> f64 {
        self.recent.hit_ratio()
    }

    fn recent_misses(&self) -> f64 {
        self.recent.misses()
    }

    fn clear(&mut self) {
        self.a1in.clear();
        self.am.clear();
        self.a1out.clear();
        self.ghost_fifo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn second_access_promotes_via_ghost() {
        let mut c = TwoQCache::new(8); // a1in=2, am=6, ghost=4
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ()); // evicts 1 from a1in → ghost
        assert!(!c.peek(&1));
        assert_eq!(c.ghost_len(), 1);
        c.insert(1, ()); // ghost hit → goes to Am
        assert_eq!(c.am_len(), 1);
        assert!(c.peek(&1));
    }

    #[test]
    fn one_shot_scan_never_reaches_am() {
        let mut c = TwoQCache::new(16);
        for k in 0..1000 {
            c.insert(k, ());
        }
        assert_eq!(c.am_len(), 0, "single-touch keys must not enter Am");
        assert!(c.len() <= 16);
    }

    #[test]
    fn hot_set_survives_scan() {
        let mut c = TwoQCache::new(16);
        // Make 1,2 hot (insert, evict to ghost, reinsert → Am).
        for round in 0..3 {
            for k in [1, 2] {
                c.insert(k, round);
            }
            for k in 100..110 {
                c.insert(k, round);
            }
        }
        assert!(c.am_len() >= 2, "hot keys should be in Am");
        for k in 1000..2000 {
            c.insert(k, 0);
        }
        assert!(c.peek(&1) && c.peek(&2), "scan displaced the hot set");
    }

    #[test]
    fn cold_inserts_bypass_ghosts_and_spare_am() {
        let mut c = TwoQCache::new(16); // a1in=4, am=12, ghost=8
                                        // Hot pair reaches Am via the ghost path.
        for round in 0..3 {
            for k in [1, 2] {
                c.insert(k, round);
            }
            for k in 100..110 {
                c.insert(k, round);
            }
        }
        assert!(c.am_len() >= 2);
        let am_before = c.am_len();
        let ghosts_before = c.ghost_len();
        for k in 1000..2000 {
            c.insert_cold(k, 0);
        }
        assert!(c.peek(&1) && c.peek(&2), "cold scan displaced Am");
        assert_eq!(c.am_len(), am_before, "cold scan must not touch Am");
        assert_eq!(
            c.ghost_len(),
            ghosts_before,
            "cold evictions must not be remembered as ghosts"
        );
        // Re-inserting a cold-scanned key gets no second-chance boost.
        c.insert(1500, 0);
        assert_eq!(c.am_len(), am_before, "cold keys must not promote into Am");
    }

    #[test]
    fn peek_value_is_stat_silent() {
        let mut c = TwoQCache::new(8);
        c.insert(1, "v");
        let before = c.stats();
        assert_eq!(Cache::peek_value(&c, &1), Some(&"v"));
        assert!(Cache::peek_value(&c, &9).is_none());
        let after = c.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }

    #[test]
    fn ghost_capacity_bounded() {
        let mut c = TwoQCache::new(8);
        for k in 0..10_000 {
            c.insert(k, ());
        }
        assert!(c.ghost_len() <= 4);
        assert!(c.len() <= 8);
    }

    #[test]
    fn remove_works_across_queues() {
        let mut c = TwoQCache::new(8);
        c.insert(1, "a");
        assert_eq!(c.remove(&1), Some("a"));
        assert_eq!(c.remove(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn get_returns_current_value() {
        let mut c = TwoQCache::new(4);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    #[should_panic(expected = "capacity ≥ 4")]
    fn tiny_capacity_panics() {
        let _: TwoQCache<u8, ()> = TwoQCache::new(2);
    }

    #[test]
    fn resize_rebalances_queues() {
        let mut c = TwoQCache::new(16); // a1in=4, am=12, ghost=8
                                        // Populate Am via the ghost path.
        for round in 0..3 {
            for k in 0..8 {
                c.insert(k, round);
            }
        }
        assert!(c.am_len() > 0);
        let before = c.len();
        c.resize(8); // a1in=2, am=6, ghost=4
        assert_eq!(c.capacity(), 8);
        assert!(c.len() <= 8 && c.len() <= before);
        assert!(c.ghost_len() <= 4);
        c.resize(32);
        for k in 100..140 {
            c.insert(k, 0);
        }
        assert!(c.len() <= 32);
        assert!(c.a1in_len() <= 8);
    }

    proptest! {
        #[test]
        fn prop_capacity_invariant(ops in proptest::collection::vec((0u8..64, any::<u8>()), 1..400)) {
            let mut c: TwoQCache<u8, u8> = TwoQCache::new(8);
            for (k, v) in ops {
                c.insert(k, v);
                prop_assert!(c.len() <= 8);
                prop_assert!(c.ghost_len() <= 4);
            }
        }

        /// A resident key always returns the latest inserted value.
        #[test]
        fn prop_value_fidelity(ops in proptest::collection::vec((0u8..16, any::<u16>()), 1..200)) {
            let mut c: TwoQCache<u8, u16> = TwoQCache::new(8);
            let mut last: std::collections::HashMap<u8, u16> = Default::default();
            for (k, v) in ops {
                c.insert(k, v);
                last.insert(k, v);
                if let Some(got) = c.get(&k) {
                    prop_assert_eq!(*got, last[&k]);
                }
            }
        }
    }
}
