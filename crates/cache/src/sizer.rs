//! Marginal-utility cache sizer.
//!
//! A sharded node splits one RAM budget into per-shard caches. Under
//! uniform traffic an even split is optimal; under skew the hot shard's
//! cache thrashes while cold shards hold entries nobody asks for. The
//! sizer shifts capacity toward the shard where an extra entry buys the
//! most hits, using each cache's *decayed* miss count
//! ([`Cache::recent_misses`](crate::Cache::recent_misses)) as the demand
//! signal: `mu_i = recent_misses_i / capacity_i` approximates the miss
//! reduction per added entry, so moving capacity from the `mu`-minimal
//! cache to the `mu`-maximal one is a hill-climbing step on total hits.
//!
//! The sizer only *plans*; the owner of the caches applies the move with
//! [`Cache::resize`](crate::Cache::resize). Total capacity is conserved
//! by construction and a per-cache floor keeps every shard functional.

/// Tuning knobs for [`CacheSizer`].
#[derive(Debug, Clone, Copy)]
pub struct SizerConfig {
    /// No cache is shrunk below this many entries (also respects the
    /// policy minimums — keep it ≥ 4 if 2Q may be in play).
    pub min_capacity: usize,
    /// Entries moved per decision (one hill-climbing step).
    pub step: usize,
    /// The receiver's marginal utility must exceed the donor's by this
    /// factor before a move happens — suppresses oscillation when the
    /// shards are near-balanced.
    pub hysteresis: f64,
}

impl Default for SizerConfig {
    fn default() -> Self {
        SizerConfig {
            min_capacity: 16,
            step: 64,
            hysteresis: 2.0,
        }
    }
}

/// One planned capacity move: take `entries` from cache `from`, give
/// them to cache `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizerDecision {
    /// Donor cache index.
    pub from: usize,
    /// Receiver cache index.
    pub to: usize,
    /// Entries to move.
    pub entries: usize,
}

/// Plans capacity moves between sibling caches (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CacheSizer {
    config: SizerConfig,
}

impl CacheSizer {
    /// Creates a sizer with the given knobs.
    pub fn new(config: SizerConfig) -> Self {
        CacheSizer { config }
    }

    /// Proposes at most one move given `(capacity, recent_misses)` per
    /// cache. Returns `None` when fewer than two caches exist, when the
    /// utilities are too close (hysteresis), or when the donor would
    /// fall below the floor.
    pub fn plan(&self, caches: &[(usize, f64)]) -> Option<SizerDecision> {
        if caches.len() < 2 {
            return None;
        }
        let mu = |&(cap, misses): &(usize, f64)| {
            if cap == 0 {
                0.0
            } else {
                misses.max(0.0) / cap as f64
            }
        };
        let (to, _) = caches
            .iter()
            .enumerate()
            .max_by(|a, b| mu(a.1).total_cmp(&mu(b.1)))?;
        // Donor: the lowest-utility cache that can still give a full or
        // partial step without crossing the floor.
        let (from, _) = caches
            .iter()
            .enumerate()
            .filter(|&(i, &(cap, _))| i != to && cap > self.config.min_capacity)
            .min_by(|a, b| mu(a.1).total_cmp(&mu(b.1)))?;
        let (donor_cap, _) = caches[from];
        if mu(&caches[to]) <= mu(&caches[from]) * self.config.hysteresis.max(1.0) {
            return None;
        }
        let entries = self
            .config
            .step
            .min(donor_cap - self.config.min_capacity)
            .max(1);
        Some(SizerDecision { from, to, entries })
    }

    /// Plans and applies one move to a capacity vector (the caller then
    /// resizes the actual caches to match). Returns the applied move.
    pub fn rebalance(&self, caps: &mut [usize], misses: &[f64]) -> Option<SizerDecision> {
        debug_assert_eq!(caps.len(), misses.len());
        let joined: Vec<(usize, f64)> = caps.iter().copied().zip(misses.iter().copied()).collect();
        let d = self.plan(&joined)?;
        caps[d.from] -= d.entries;
        caps[d.to] += d.entries;
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizer(min: usize, step: usize, hyst: f64) -> CacheSizer {
        CacheSizer::new(SizerConfig {
            min_capacity: min,
            step,
            hysteresis: hyst,
        })
    }

    #[test]
    fn moves_capacity_toward_the_thrashing_cache() {
        let s = sizer(16, 64, 2.0);
        // Shard 1 misses hard; shard 3 is idle.
        let d = s
            .plan(&[(256, 10.0), (256, 500.0), (256, 12.0), (256, 0.5)])
            .expect("imbalance should trigger a move");
        assert_eq!(d.to, 1);
        assert_eq!(d.from, 3);
        assert_eq!(d.entries, 64);
    }

    #[test]
    fn hysteresis_suppresses_near_balanced_moves() {
        let s = sizer(16, 64, 2.0);
        assert_eq!(s.plan(&[(256, 100.0), (256, 150.0)]), None);
        // But a 3× imbalance moves.
        assert!(s.plan(&[(256, 100.0), (256, 301.0)]).is_some());
    }

    #[test]
    fn floor_is_respected() {
        let s = sizer(100, 64, 1.5);
        // Donor is already at the floor → no move.
        assert_eq!(s.plan(&[(100, 0.0), (100, 500.0)]), None);
        // Partial step when the donor is near the floor.
        let d = s.plan(&[(120, 0.0), (100, 500.0)]).unwrap();
        assert_eq!(d.entries, 20);
    }

    #[test]
    fn degenerate_inputs() {
        let s = sizer(16, 64, 2.0);
        assert_eq!(s.plan(&[]), None);
        assert_eq!(s.plan(&[(256, 900.0)]), None);
        // All idle: no move (max mu is 0 → hysteresis fails).
        assert_eq!(s.plan(&[(256, 0.0), (256, 0.0)]), None);
    }

    #[test]
    fn rebalance_conserves_total() {
        let s = sizer(16, 64, 2.0);
        let mut caps = vec![256, 256, 256, 256];
        let misses = vec![0.0, 800.0, 1.0, 1.0];
        let total: usize = caps.iter().sum();
        // Iterate to convergence; the loop must terminate via hysteresis
        // or the floor.
        for _ in 0..100 {
            if s.rebalance(&mut caps, &misses).is_none() {
                break;
            }
            assert_eq!(caps.iter().sum::<usize>(), total);
        }
        assert!(caps[1] > 256, "hot shard should have grown: {caps:?}");
        assert!(caps.iter().all(|&c| c >= 16));
    }
}
