//! In-RAM caches for hot fingerprints.
//!
//! Each SHHC hybrid node fronts its on-SSD hash table with a RAM cache:
//! "RAM serves as the cache for SSDs to absorb requests for frequent
//! queries and hide the latency of SSD accesses", managed with an LRU
//! discipline (paper Fig. 4). This crate provides:
//!
//! - [`LruCache`] — O(1) least-recently-used cache (hash map + intrusive
//!   doubly-linked list over a slab),
//! - [`SegmentedLruCache`] — scan-resistant two-segment LRU (probation +
//!   protected),
//! - [`TwoQCache`] — the 2Q policy (A1in/A1out/Am),
//!
//! all implementing the object-safe [`Cache`] trait, plus [`CacheStats`]
//! instrumentation shared by every policy.
//!
//! Every policy is generic over its [`std::hash::BuildHasher`] and
//! defaults to [`shhc_types::FingerprintBuildHasher`]: cache keys are
//! SHA-1 fingerprints (or ids derived from them), already uniform, so the
//! default SipHash state buys nothing on the lookup hot path.
//!
//! # Examples
//!
//! ```
//! use shhc_cache::{Cache, LruCache};
//!
//! let mut cache = LruCache::new(2);
//! cache.insert(1u64, "a");
//! cache.insert(2, "b");
//! cache.get(&1);            // 1 is now most recent
//! cache.insert(3, "c");     // evicts 2, the least recently used
//! assert!(cache.get(&2).is_none());
//! assert!(cache.get(&1).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lru;
mod sizer;
mod slru;
mod stats;
mod twoq;

pub use lru::LruCache;
pub use sizer::{CacheSizer, SizerConfig, SizerDecision};
pub use slru::SegmentedLruCache;
pub use stats::{CacheStats, WindowedHitRate};
pub use twoq::TwoQCache;

use std::hash::Hash;

/// A bounded key-value cache with an eviction policy.
///
/// All SHHC cache policies implement this trait so the hybrid node (and
/// the cache-ablation benches) can swap policies freely.
pub trait Cache<K, V> {
    /// Looks up `key`, updating recency metadata on hit.
    fn get(&mut self, key: &K) -> Option<&V>;

    /// Inserts `key → value`, possibly evicting. Returns the evicted
    /// entry, if any.
    fn insert(&mut self, key: K, value: V) -> Option<(K, V)>;

    /// Inserts `key → value` with *cold* (scan-resistant) admission: the
    /// entry becomes the policy's next eviction candidate instead of its
    /// most-recent one, and never promotes or displaces protected state.
    /// One-pass scans — a streaming restore replaying a manifest — use
    /// this so repeated cold inserts churn a single victim slot while the
    /// resident working set stays put. Updating a key that is already
    /// resident rewrites its value in place without a recency boost.
    /// Returns the evicted entry, if any.
    fn insert_cold(&mut self, key: K, value: V) -> Option<(K, V)>;

    /// Looks up `key` without touching recency metadata *or* the
    /// hit/miss counters ([`Cache::stats`], [`Cache::recent_hit_ratio`])
    /// — the read half of scan-resistant access, so a restore sweep
    /// neither reorders the cache nor skews the demand signals that
    /// drive autosizing.
    fn peek_value(&self, key: &K) -> Option<&V>;

    /// Tests presence *without* updating recency.
    fn peek(&self, key: &K) -> bool;

    /// Removes `key`, returning its value if present.
    fn remove(&mut self, key: &K) -> Option<V>;

    /// Current number of cached entries.
    fn len(&self) -> usize;

    /// True if the cache holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    fn capacity(&self) -> usize;

    /// Changes the capacity online. Shrinking evicts down to the new
    /// bound in the policy's own eviction order (counted in
    /// [`CacheStats::evictions`]); growing takes effect immediately for
    /// subsequent inserts. Cached answers are never changed — only how
    /// many entries may stay resident.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below the policy's minimum (1 for LRU,
    /// 2 for SLRU, 4 for 2Q).
    fn resize(&mut self, capacity: usize);

    /// Hit/miss/eviction counters.
    fn stats(&self) -> CacheStats;

    /// Exponentially decayed recent hit ratio (see [`WindowedHitRate`]) —
    /// the control signal for cache autosizing, where the lifetime
    /// [`CacheStats::hit_ratio`] is too slow to move.
    fn recent_hit_ratio(&self) -> f64 {
        self.stats().hit_ratio()
    }

    /// Exponentially decayed recent miss count (the marginal-utility
    /// sizer's raw demand signal).
    fn recent_misses(&self) -> f64 {
        self.stats().misses as f64
    }

    /// Empties the cache (stats are preserved).
    fn clear(&mut self);
}

/// Marker bound for cache keys.
pub trait CacheKey: Eq + Hash + Clone {}
impl<T: Eq + Hash + Clone> CacheKey for T {}
