//! Shared cache instrumentation.

/// Counters every cache policy maintains.
///
/// # Examples
///
/// ```
/// use shhc_cache::{Cache, CacheStats, LruCache};
///
/// let mut c = LruCache::new(1);
/// c.insert(1u32, ());
/// c.get(&1);
/// c.get(&2);
/// let s = c.stats();
/// assert_eq!(s.hits, 1);
/// assert_eq!(s.misses, 1);
/// assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Sums counters across caches — a sharded node's per-shard RAM
    /// caches report one aggregate. Idle (all-zero) parts contribute
    /// nothing, and the merged [`CacheStats::hit_ratio`] stays
    /// well-defined (zero lookups reports 0.0).
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a CacheStats>) -> CacheStats {
        parts.into_iter().fold(CacheStats::default(), |mut acc, p| {
            acc.hits += p.hits;
            acc.misses += p.misses;
            acc.evictions += p.evictions;
            acc.insertions += p.insertions;
            acc
        })
    }

    /// Fraction of lookups that hit; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Half-life (in lookups) of the per-policy recent-hit-rate window: long
/// enough to smooth batch-to-batch noise, short enough that a working-set
/// shift shows within a few thousand lookups.
pub(crate) const RECENT_HALF_LIFE: f64 = 1024.0;

/// Exponentially decayed hit-rate window.
///
/// [`CacheStats::hit_ratio`] is a *lifetime* average: after a million
/// lookups it barely moves, so a cache whose working set just shifted
/// still reports its old ratio for a long time — useless as a control
/// signal. This window decays both counters by `0.5^(1/half_life)` per
/// observation, so the reported ratio tracks roughly the last
/// `half_life` lookups and an idle-then-shifted cache re-converges fast.
///
/// # Examples
///
/// ```
/// use shhc_cache::WindowedHitRate;
///
/// let mut w = WindowedHitRate::new(100.0);
/// for _ in 0..1000 {
///     w.observe(true);
/// }
/// assert!(w.hit_ratio() > 0.99);
/// for _ in 0..1000 {
///     w.observe(false); // the shift shows up within ~a half-life
/// }
/// assert!(w.hit_ratio() < 0.01);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WindowedHitRate {
    decay: f64,
    hits: f64,
    lookups: f64,
}

impl WindowedHitRate {
    /// Creates a window whose influence halves every `half_life`
    /// lookups (clamped to ≥ 1).
    pub fn new(half_life: f64) -> Self {
        let half_life = half_life.max(1.0);
        WindowedHitRate {
            decay: 0.5f64.powf(1.0 / half_life),
            hits: 0.0,
            lookups: 0.0,
        }
    }

    /// Records one lookup outcome.
    pub fn observe(&mut self, hit: bool) {
        self.hits = self.hits * self.decay + if hit { 1.0 } else { 0.0 };
        self.lookups = self.lookups * self.decay + 1.0;
    }

    /// Decayed hit ratio; zero before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0.0 {
            0.0
        } else {
            self.hits / self.lookups
        }
    }

    /// Effective (decayed) lookup count — how much evidence backs the
    /// ratio; saturates near the half-life × `1/ln 2`.
    pub fn lookups(&self) -> f64 {
        self.lookups
    }

    /// Decayed miss count — the marginal-utility sizer's raw signal.
    pub fn misses(&self) -> f64 {
        (self.lookups - self.hits).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn window_tracks_recent_behavior() {
        let mut w = WindowedHitRate::new(50.0);
        assert_eq!(w.hit_ratio(), 0.0);
        for _ in 0..500 {
            w.observe(true);
        }
        assert!(w.hit_ratio() > 0.99, "ratio {}", w.hit_ratio());
        // A lifetime average would stay ≈ 0.5 after the flip; the window
        // converges to the new behavior within a few half-lives.
        for _ in 0..500 {
            w.observe(false);
        }
        assert!(w.hit_ratio() < 0.01, "ratio {}", w.hit_ratio());
        assert!(w.misses() > 0.0);
        // Evidence saturates around half_life / ln 2 ≈ 72.
        assert!(w.lookups() > 50.0 && w.lookups() < 100.0);
    }

    #[test]
    fn merge_sums_parts_and_keeps_ratio_defined() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 2,
            insertions: 6,
        };
        let idle = CacheStats::default();
        let merged = CacheStats::merge([&a, &idle, &a]);
        assert_eq!(merged.hits, 6);
        assert_eq!(merged.misses, 2);
        assert_eq!(merged.evictions, 4);
        assert_eq!(merged.insertions, 12);
        assert!((merged.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::merge([&idle, &idle]).hit_ratio(), 0.0);
    }

    #[test]
    fn ratio_arithmetic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            insertions: 4,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.lookups(), 4);
    }
}
