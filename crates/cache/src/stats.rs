//! Shared cache instrumentation.

/// Counters every cache policy maintains.
///
/// # Examples
///
/// ```
/// use shhc_cache::{Cache, CacheStats, LruCache};
///
/// let mut c = LruCache::new(1);
/// c.insert(1u32, ());
/// c.get(&1);
/// c.get(&2);
/// let s = c.stats();
/// assert_eq!(s.hits, 1);
/// assert_eq!(s.misses, 1);
/// assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Sums counters across caches — a sharded node's per-shard RAM
    /// caches report one aggregate. Idle (all-zero) parts contribute
    /// nothing, and the merged [`CacheStats::hit_ratio`] stays
    /// well-defined (zero lookups reports 0.0).
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a CacheStats>) -> CacheStats {
        parts.into_iter().fold(CacheStats::default(), |mut acc, p| {
            acc.hits += p.hits;
            acc.misses += p.misses;
            acc.evictions += p.evictions;
            acc.insertions += p.insertions;
            acc
        })
    }

    /// Fraction of lookups that hit; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn merge_sums_parts_and_keeps_ratio_defined() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 2,
            insertions: 6,
        };
        let idle = CacheStats::default();
        let merged = CacheStats::merge([&a, &idle, &a]);
        assert_eq!(merged.hits, 6);
        assert_eq!(merged.misses, 2);
        assert_eq!(merged.evictions, 4);
        assert_eq!(merged.insertions, 12);
        assert!((merged.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::merge([&idle, &idle]).hit_ratio(), 0.0);
    }

    #[test]
    fn ratio_arithmetic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            insertions: 4,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.lookups(), 4);
    }
}
