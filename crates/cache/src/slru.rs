//! Segmented LRU: a scan-resistant refinement of plain LRU.

use std::hash::BuildHasher;

use shhc_types::FingerprintBuildHasher;

use crate::stats::RECENT_HALF_LIFE;
use crate::{Cache, CacheKey, CacheStats, LruCache, WindowedHitRate};

/// Two-segment LRU (probation + protected).
///
/// New entries land in the *probation* segment; a hit promotes an entry to
/// the *protected* segment, which only demotes (never discards) back into
/// probation. One-shot scans — common when a backup stream contains long
/// runs of never-repeated fingerprints — wash through probation without
/// displacing the protected working set, which is precisely the hazard for
/// the hybrid node's RAM cache on low-redundancy workloads.
///
/// # Examples
///
/// ```
/// use shhc_cache::{Cache, SegmentedLruCache};
///
/// let mut c = SegmentedLruCache::new(4, 0.5);
/// c.insert(1u32, "hot");
/// c.get(&1); // promote to protected
/// // A scan of cold keys cannot evict the protected entry.
/// for k in 100..200u32 {
///     c.insert(k, "cold");
/// }
/// assert!(c.peek(&1));
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedLruCache<K, V, S = FingerprintBuildHasher> {
    probation: LruCache<K, V, S>,
    protected: LruCache<K, V, S>,
    protected_fraction: f64,
    stats: CacheStats,
    recent: WindowedHitRate,
}

impl<K: CacheKey, V> SegmentedLruCache<K, V> {
    /// Creates a cache of `capacity` total entries, reserving
    /// `protected_fraction` of it for the protected segment.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` or `protected_fraction` is outside
    /// `(0, 1)`.
    pub fn new(capacity: usize, protected_fraction: f64) -> Self {
        Self::with_hasher(capacity, protected_fraction, FingerprintBuildHasher)
    }
}

impl<K: CacheKey, V, S: BuildHasher + Clone> SegmentedLruCache<K, V, S> {
    /// Like [`SegmentedLruCache::new`] with an explicit hash-state
    /// builder (cloned into both segments).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` or `protected_fraction` is outside
    /// `(0, 1)`.
    pub fn with_hasher(capacity: usize, protected_fraction: f64, hasher: S) -> Self {
        assert!(capacity >= 2, "segmented LRU needs capacity ≥ 2");
        assert!(
            protected_fraction > 0.0 && protected_fraction < 1.0,
            "protected fraction must be in (0,1)"
        );
        let protected = ((capacity as f64 * protected_fraction) as usize)
            .max(1)
            .min(capacity - 1);
        let probation = capacity - protected;
        SegmentedLruCache {
            probation: LruCache::with_hasher(probation, hasher.clone()),
            protected: LruCache::with_hasher(protected, hasher),
            protected_fraction,
            stats: CacheStats::default(),
            recent: WindowedHitRate::new(RECENT_HALF_LIFE),
        }
    }
}

impl<K: CacheKey, V, S: BuildHasher> SegmentedLruCache<K, V, S> {
    /// Number of entries currently in the protected segment.
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }

    /// Number of entries currently in the probation segment.
    pub fn probation_len(&self) -> usize {
        self.probation.len()
    }
}

impl<K: CacheKey, V, S: BuildHasher> Cache<K, V> for SegmentedLruCache<K, V, S> {
    fn get(&mut self, key: &K) -> Option<&V> {
        // Hit in protected: plain recency update.
        if self.protected.peek(key) {
            self.stats.hits += 1;
            self.recent.observe(true);
            return self.protected.get(key);
        }
        // Hit in probation: promote to protected; protected overflow
        // demotes its LRU back to probation.
        if let Some(value) = self.probation.remove(key) {
            self.stats.hits += 1;
            self.recent.observe(true);
            if let Some((dk, dv)) = self.protected.insert(key.clone(), value) {
                self.probation.insert(dk, dv);
            }
            // The outer hit counter was already incremented above; the
            // inner cache's own counters track segment-level behaviour.
            return self.protected.get(key);
        }
        self.stats.misses += 1;
        self.recent.observe(false);
        None
    }

    fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stats.insertions += 1;
        // Updates of resident keys stay in their segment.
        if self.protected.peek(&key) {
            return self.protected.insert(key, value);
        }
        let evicted = self.probation.insert(key, value);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Cold entries land at the probation segment's LRU end and can
    /// never enter (or demote from) protected, so a restore scan churns
    /// one probation slot while the promoted working set is untouched.
    fn insert_cold(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.stats.insertions += 1;
        if self.protected.peek(&key) {
            return self.protected.insert_cold(key, value);
        }
        let evicted = self.probation.insert_cold(key, value);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    fn peek_value(&self, key: &K) -> Option<&V> {
        self.protected
            .peek_value(key)
            .or_else(|| self.probation.peek_value(key))
    }

    fn peek(&self, key: &K) -> bool {
        self.probation.peek(key) || self.protected.peek(key)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.probation
            .remove(key)
            .or_else(|| self.protected.remove(key))
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn capacity(&self) -> usize {
        self.probation.capacity() + self.protected.capacity()
    }

    fn resize(&mut self, capacity: usize) {
        assert!(capacity >= 2, "segmented LRU needs capacity ≥ 2");
        let protected_cap = ((capacity as f64 * self.protected_fraction) as usize)
            .max(1)
            .min(capacity - 1);
        let probation_cap = capacity - protected_cap;
        let before = self.len();
        // Probation first (may already free room), then demote protected
        // overflow into probation — a shrink keeps the hottest entries
        // resident and pushes the protected tail down a tier instead of
        // dropping it outright.
        self.probation.resize(probation_cap);
        while self.protected.len() > protected_cap {
            if let Some((k, v)) = self.protected.pop_lru() {
                self.probation.insert(k, v);
            }
        }
        self.protected.resize(protected_cap);
        self.stats.evictions += (before - self.len()) as u64;
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn recent_hit_ratio(&self) -> f64 {
        self.recent.hit_ratio()
    }

    fn recent_misses(&self) -> f64 {
        self.recent.misses()
    }

    fn clear(&mut self) {
        self.probation.clear();
        self.protected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn promotion_on_hit() {
        let mut c = SegmentedLruCache::new(4, 0.5);
        c.insert(1, ());
        assert_eq!(c.probation_len(), 1);
        assert_eq!(c.protected_len(), 0);
        c.get(&1);
        assert_eq!(c.probation_len(), 0);
        assert_eq!(c.protected_len(), 1);
    }

    #[test]
    fn scan_resistance() {
        let mut c = SegmentedLruCache::new(8, 0.5);
        // Build a protected working set.
        for k in 0..4 {
            c.insert(k, ());
            c.get(&k);
        }
        // Blast a scan of 1000 cold keys through.
        for k in 1000..2000 {
            c.insert(k, ());
        }
        for k in 0..4 {
            assert!(c.peek(&k), "protected key {k} evicted by scan");
        }
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut c = SegmentedLruCache::new(4, 0.5); // 2 protected, 2 probation
        for k in 0..4 {
            c.insert(k, ());
        }
        // Probation can hold 2: keys 2,3 remain; 0,1 were evicted.
        c.get(&2);
        c.get(&3); // both promoted, protected full
        c.insert(10, ());
        c.insert(11, ());
        c.get(&10); // promote 10 → protected overflow demotes 2
        assert!(
            c.peek(&2),
            "demoted entry must remain cached (in probation)"
        );
        assert_eq!(c.protected_len(), 2);
    }

    #[test]
    fn cold_inserts_churn_one_probation_slot() {
        let mut c = SegmentedLruCache::new(8, 0.5); // 4 + 4
        for k in 0..4 {
            c.insert(k, ());
            c.get(&k); // protected working set
        }
        for k in 10..14 {
            c.insert(k, ()); // probation full of warm entries
        }
        // A cold scan may claim at most one probation slot: the first
        // cold insert evicts probation's LRU, the rest self-evict.
        for k in 1000..2000 {
            c.insert_cold(k, ());
        }
        for k in 0..4 {
            assert!(c.peek(&k), "protected key {k} evicted by cold scan");
        }
        for k in 11..14 {
            assert!(c.peek(&k), "warm probation key {k} lost >1 slot to scan");
        }
        assert!(c.peek(&1999), "latest cold entry resident");
        // Cold reads never enter protected.
        assert_eq!(c.protected_len(), 4);
    }

    #[test]
    fn peek_value_reads_both_segments_silently() {
        let mut c = SegmentedLruCache::new(4, 0.5);
        c.insert(1, "p");
        c.insert(2, "q");
        c.get(&1); // 1 → protected
        let before = c.stats();
        assert_eq!(Cache::peek_value(&c, &1), Some(&"p"));
        assert_eq!(Cache::peek_value(&c, &2), Some(&"q"));
        assert!(Cache::peek_value(&c, &3).is_none());
        let after = c.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
        assert_eq!(c.protected_len(), 1, "peek must not promote");
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = SegmentedLruCache::new(10, 0.8);
        for k in 0..1000 {
            c.insert(k, ());
            if k % 3 == 0 {
                c.get(&k);
            }
            assert!(c.len() <= 10);
        }
    }

    #[test]
    fn remove_from_either_segment() {
        let mut c = SegmentedLruCache::new(4, 0.5);
        c.insert(1, "a");
        c.insert(2, "b");
        c.get(&1); // 1 → protected
        assert_eq!(c.remove(&1), Some("a"));
        assert_eq!(c.remove(&2), Some("b"));
        assert_eq!(c.remove(&3), None);
        assert!(c.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut c = SegmentedLruCache::new(2, 0.5);
        c.insert(1, ());
        c.get(&1);
        c.get(&2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity ≥ 2")]
    fn tiny_capacity_panics() {
        let _: SegmentedLruCache<u8, ()> = SegmentedLruCache::new(1, 0.5);
    }

    #[test]
    fn resize_keeps_fraction_and_demotes_protected_tail() {
        let mut c = SegmentedLruCache::new(8, 0.5); // 4 + 4
        for k in 0..4 {
            c.insert(k, ());
            c.get(&k); // all protected
        }
        for k in 10..14 {
            c.insert(k, ()); // fill probation
        }
        assert_eq!(c.len(), 8);
        c.resize(4); // 2 protected + 2 probation
        assert_eq!(c.capacity(), 4);
        assert!(c.len() <= 4);
        assert_eq!(c.protected_len(), 2);
        // The protected MRU pair (2,3) stays protected; the demoted tail
        // may still be resident in probation but never above it.
        assert!(c.peek(&2) && c.peek(&3));
        c.resize(12);
        for k in 20..30 {
            c.insert(k, ());
        }
        assert!(c.len() > 4, "grown capacity is usable");
        assert!(c.len() <= 12);
    }

    proptest! {
        /// Capacity invariant under arbitrary workloads, and hits always
        /// return the most recently inserted value for the key.
        #[test]
        fn prop_value_fidelity(ops in proptest::collection::vec((0u8..32, any::<u16>()), 1..300)) {
            let mut c: SegmentedLruCache<u8, u16> = SegmentedLruCache::new(8, 0.5);
            let mut last: std::collections::HashMap<u8, u16> = Default::default();
            for (k, v) in ops {
                c.insert(k, v);
                last.insert(k, v);
                if let Some(got) = c.get(&k) {
                    prop_assert_eq!(*got, last[&k]);
                }
                prop_assert!(c.len() <= 8);
            }
        }
    }
}
