//! The event-driven simulation kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use shhc_types::Nanos;

/// Identifies an agent registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(usize);

impl AgentId {
    /// The raw index of the agent.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent-{}", self.0)
    }
}

/// An entity that reacts to timestamped events.
///
/// Agents communicate exclusively by scheduling events through the
/// [`SimCtx`]; the kernel delivers them in (time, scheduling-order)
/// sequence, which makes every run bit-for-bit reproducible for a given
/// seed.
pub trait Agent<M> {
    /// Handles one event delivered to this agent.
    fn on_event(&mut self, ctx: &mut SimCtx<'_, M>, event: M);
}

/// The context handed to an agent while it processes an event.
#[derive(Debug)]
pub struct SimCtx<'a, M> {
    now: Nanos,
    self_id: AgentId,
    outbox: &'a mut Vec<(Nanos, AgentId, M)>,
    rng: &'a mut StdRng,
}

impl<'a, M> SimCtx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The id of the agent handling the event.
    pub fn self_id(&self) -> AgentId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `dst` after `delay`.
    pub fn send(&mut self, delay: Nanos, dst: AgentId, msg: M) {
        self.outbox.push((self.now + delay, dst, msg));
    }

    /// Schedules `msg` back to the current agent after `delay`.
    pub fn send_self(&mut self, delay: Nanos, msg: M) {
        let dst = self.self_id;
        self.send(delay, dst, msg);
    }

    /// The simulation's seeded random source.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

struct Scheduled<M> {
    at: Nanos,
    seq: u64,
    dst: AgentId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in scheduling
/// order. The clock only moves when events are consumed; an empty queue
/// ends the run.
pub struct Simulation<M> {
    agents: Vec<Option<Box<dyn Agent<M>>>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    outbox: Vec<(Nanos, AgentId, M)>,
    now: Nanos,
    seq: u64,
    rng: StdRng,
    processed: u64,
}

impl<M> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("agents", &self.agents.len())
            .field("pending", &self.queue.len())
            .field("now", &self.now)
            .field("processed", &self.processed)
            .finish()
    }
}

impl<M> Simulation<M> {
    /// Creates a simulation with a seeded random source.
    pub fn new(seed: u64) -> Self {
        Simulation {
            agents: Vec::new(),
            queue: BinaryHeap::new(),
            outbox: Vec::new(),
            now: Nanos::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// Registers an agent, returning its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent<M>>) -> AgentId {
        self.agents.push(Some(agent));
        AgentId(self.agents.len() - 1)
    }

    /// Schedules an event from outside any agent (e.g. the initial
    /// stimulus), delivered at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was never registered.
    pub fn schedule(&mut self, at: Nanos, dst: AgentId, msg: M) {
        assert!(dst.0 < self.agents.len(), "unknown agent {dst}");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, dst, msg }));
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Delivers the next event. Returns `false` when the queue is empty.
    ///
    /// Events addressed to a removed agent (see
    /// [`Simulation::remove_agent`]) are dropped silently, modelling
    /// messages to a crashed node.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time must not run backwards");
        self.now = ev.at;
        self.processed += 1;

        let Some(mut agent) = self.agents[ev.dst.0].take() else {
            return true;
        };
        {
            let mut ctx = SimCtx {
                now: self.now,
                self_id: ev.dst,
                outbox: &mut self.outbox,
                rng: &mut self.rng,
            };
            agent.on_event(&mut ctx, ev.msg);
        }
        self.agents[ev.dst.0] = Some(agent);

        for (at, dst, msg) in self.outbox.drain(..) {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Scheduled { at, seq, dst, msg }));
        }
        true
    }

    /// Runs until the event queue drains, returning the final time.
    pub fn run(&mut self) -> Nanos {
        while self.step() {}
        self.now
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` are delivered), returning the final time.
    pub fn run_until(&mut self, deadline: Nanos) -> Nanos {
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now
    }

    /// Removes an agent's registration, returning it for inspection.
    ///
    /// Pending events for the agent are dropped at delivery time (the
    /// kernel skips missing agents silently), modelling a crashed node.
    pub fn remove_agent(&mut self, id: AgentId) -> Option<Box<dyn Agent<M>>> {
        self.agents.get_mut(id.0).and_then(Option::take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: Option<AgentId>,
        log: Vec<(Nanos, u32)>,
    }

    impl Agent<Msg> for Pinger {
        fn on_event(&mut self, ctx: &mut SimCtx<'_, Msg>, ev: Msg) {
            match ev {
                Msg::Ping(n) => {
                    self.log.push((ctx.now(), n));
                    if n > 0 {
                        if let Some(peer) = self.peer {
                            ctx.send(Nanos::from_micros(5), peer, Msg::Pong(n - 1));
                        }
                    }
                }
                Msg::Pong(n) => {
                    self.log.push((ctx.now(), n));
                    if n > 0 {
                        if let Some(peer) = self.peer {
                            ctx.send(Nanos::from_micros(5), peer, Msg::Ping(n - 1));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_alternates_and_terminates() {
        let mut sim = Simulation::new(1);
        let a = sim.add_agent(Box::new(Pinger {
            peer: None,
            log: Vec::new(),
        }));
        let b = sim.add_agent(Box::new(Pinger {
            peer: None,
            log: Vec::new(),
        }));
        // Wire peers (re-register through remove/insert is clumsy; use a
        // fresh construction instead).
        let mut sim = Simulation::new(1);
        let a = {
            let _ = (a, b);
            sim.add_agent(Box::new(Pinger {
                peer: Some(AgentId(1)),
                log: Vec::new(),
            }))
        };
        let _b = sim.add_agent(Box::new(Pinger {
            peer: Some(AgentId(0)),
            log: Vec::new(),
        }));
        sim.schedule(Nanos::ZERO, a, Msg::Ping(4));
        let end = sim.run();
        assert_eq!(end, Nanos::from_micros(20));
        assert_eq!(sim.processed(), 5);
    }

    struct Recorder {
        seen: Vec<u32>,
    }

    impl Agent<u32> for Recorder {
        fn on_event(&mut self, _ctx: &mut SimCtx<'_, u32>, ev: u32) {
            self.seen.push(ev);
        }
    }

    #[test]
    fn same_time_events_fifo() {
        let mut sim = Simulation::new(0);
        let r = sim.add_agent(Box::new(Recorder { seen: Vec::new() }));
        for i in 0..10 {
            sim.schedule(Nanos::from_micros(100), r, i);
        }
        sim.run();
        let agent = sim.remove_agent(r).expect("agent exists");
        // Downcast via Debug not possible; replay with a shared log
        // instead: schedule order must equal delivery order, which we
        // verify through processed count and final time.
        assert_eq!(sim.processed(), 10);
        assert_eq!(sim.now(), Nanos::from_micros(100));
        drop(agent);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct SelfTicker;
        impl Agent<()> for SelfTicker {
            fn on_event(&mut self, ctx: &mut SimCtx<'_, ()>, _: ()) {
                ctx.send_self(Nanos::from_millis(1), ());
            }
        }
        let mut sim = Simulation::new(0);
        let t = sim.add_agent(Box::new(SelfTicker));
        sim.schedule(Nanos::ZERO, t, ());
        sim.run_until(Nanos::from_millis(10));
        assert_eq!(sim.now(), Nanos::from_millis(10));
        assert_eq!(sim.processed(), 11); // t=0..=10 inclusive
    }

    #[test]
    fn removed_agent_drops_events() {
        let mut sim = Simulation::new(0);
        let r = sim.add_agent(Box::new(Recorder { seen: Vec::new() }));
        sim.schedule(Nanos::from_micros(1), r, 1);
        sim.schedule(Nanos::from_micros(2), r, 2);
        let _ = sim.remove_agent(r);
        sim.run();
        // Both events were consumed (clock advanced) but no agent saw them.
        assert_eq!(sim.processed(), 2);
        assert_eq!(sim.now(), Nanos::from_micros(2));
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> (Nanos, u64) {
            struct Jitter;
            impl Agent<u32> for Jitter {
                fn on_event(&mut self, ctx: &mut SimCtx<'_, u32>, left: u32) {
                    if left > 0 {
                        use rand::Rng as _;
                        let d = ctx.rng().gen_range(1..1000u64);
                        ctx.send_self(Nanos::from_micros(d), left - 1);
                    }
                }
            }
            let mut sim = Simulation::new(42);
            let j = sim.add_agent(Box::new(Jitter));
            sim.schedule(Nanos::ZERO, j, 100);
            (sim.run(), sim.processed())
        }
        assert_eq!(run_once(), run_once());
    }
}
