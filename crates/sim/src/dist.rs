//! Seeded random distributions for workload and service-time modelling.
//!
//! Implemented from first principles on top of `rand`'s uniform source so
//! the workspace needs no `rand_distr` dependency.

use rand::Rng;
use shhc_types::Nanos;

/// Exponential distribution with the given rate (events per second).
///
/// Used for Poisson arrival processes and memoryless service times in the
/// Figure-1 capacity simulation.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use shhc_sim::dist::Exponential;
///
/// let exp = Exponential::new(1000.0); // 1000 events/s ⇒ mean 1 ms
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = exp.sample(&mut rng);
/// assert!(x.as_secs_f64() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate_per_sec: f64,
}

impl Exponential {
    /// Creates a distribution with `rate_per_sec` events per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive and finite"
        );
        Exponential { rate_per_sec }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Mean inter-event gap.
    pub fn mean(&self) -> Nanos {
        Nanos::from_secs_f64(1.0 / self.rate_per_sec)
    }

    /// Draws one inter-event gap.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanos {
        // Inverse CDF; 1-u avoids ln(0).
        let u: f64 = rng.gen();
        Nanos::from_secs_f64(-(1.0 - u).ln() / self.rate_per_sec)
    }
}

/// Zipf distribution over ranks `1..=n` with skew `s` (s = 0 is uniform,
/// larger is more skewed). Sampling is O(log n) via a precomputed CDF.
///
/// Models the hot-fingerprint popularity that makes the paper's RAM cache
/// effective.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use shhc_sim::dist::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(2);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "skew must be ≥ 0 and finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Log-normal distribution, parameterized by the underlying normal's
/// `mu`/`sigma`. Used for duplicate-distance sampling in trace generation
/// (backup streams show multiplicative locality spread).
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use shhc_sim::dist::LogNormal;
///
/// let d = LogNormal::from_mean_cv(1000.0, 0.5);
/// let mut rng = StdRng::seed_from_u64(3);
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite() && mu.is_finite());
        LogNormal { mu, sigma }
    }

    /// Creates the distribution matching a target mean and coefficient of
    /// variation (`cv` = stddev/mean) of the log-normal itself.
    ///
    /// # Panics
    ///
    /// Panics if `mean ≤ 0` or `cv < 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(cv >= 0.0, "cv must be non-negative");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Mean of the log-normal.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one value (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_close() {
        let exp = Exponential::new(10_000.0); // mean 100 µs
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| exp.sample(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!(
            (8.5e-5..1.15e-4).contains(&mean),
            "sample mean {mean} far from 1e-4"
        );
    }

    #[test]
    fn zipf_rank1_most_popular() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = vec![0u32; 51];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[50] * 10);
        assert_eq!(counts[0], 0, "rank 0 must never be drawn");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 11];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / 100_000.0;
            assert!((0.08..0.12).contains(&share), "rank {r} share {share}");
        }
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let d = LogNormal::from_mean_cv(5000.0, 1.0);
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!(
            (4000.0..6000.0).contains(&mean),
            "sample mean {mean} far from 5000"
        );
    }

    #[test]
    fn lognormal_always_positive() {
        let d = LogNormal::new(0.0, 3.0);
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
