//! Latency recording and summarization.

use shhc_types::Nanos;

/// Number of logarithmic buckets: covers 1 ns .. ~584 years at ×2 steps.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of durations.
///
/// Recording is O(1); percentiles are estimated by linear interpolation
/// within the winning bucket (≤ 2× relative error, plenty for the
/// order-of-magnitude comparisons the paper makes).
///
/// # Examples
///
/// ```
/// use shhc_sim::Histogram;
/// use shhc_types::Nanos;
///
/// let mut h = Histogram::new();
/// for i in 1..=100u64 {
///     h.record(Nanos::from_micros(i));
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 100);
/// assert!(s.max >= Nanos::from_micros(100));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: Nanos,
    min: Nanos,
    max: Nanos,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: Nanos::ZERO,
            min: Nanos::new(u64::MAX),
            max: Nanos::ZERO,
        }
    }

    fn bucket(value: Nanos) -> usize {
        let ns = value.as_nanos();
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, value: Nanos) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by interpolating
    /// within the containing bucket. Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Nanos {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within [2^b, 2^(b+1)).
                let lo = 1u64 << b;
                let hi = if b + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (b + 1)
                };
                let frac = (target - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return Nanos::new(est as u64).max(self.min).min(self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Produces a compact summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: if self.count == 0 {
                Nanos::ZERO
            } else {
                self.min
            },
            max: self.max,
        }
    }
}

/// Compact latency summary produced by [`Histogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Nanos,
    /// Median estimate.
    pub p50: Nanos,
    /// 95th percentile estimate.
    pub p95: Nanos,
    /// 99th percentile estimate.
    pub p99: Nanos,
    /// Minimum observed.
    pub min: Nanos,
    /// Maximum observed.
    pub max: Nanos,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, Nanos::ZERO);
        assert_eq!(s.p99, Nanos::ZERO);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(Nanos::from_micros(10));
        h.record(Nanos::from_micros(30));
        assert_eq!(h.mean(), Nanos::from_micros(20));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Nanos::from_micros(i));
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p95);
        assert!(s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, Nanos::from_micros(1000));
        assert_eq!(s.min, Nanos::from_micros(1));
    }

    #[test]
    fn median_within_bucket_error() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(Nanos::from_micros(100));
        }
        let p50 = h.quantile(0.5);
        // All mass in one bucket; interpolation must stay within 2×.
        assert!(p50 >= Nanos::from_micros(100) && p50 <= Nanos::from_micros(200));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Nanos::from_micros(1));
        b.record(Nanos::from_micros(1000));
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, Nanos::from_micros(1));
        assert_eq!(s.max, Nanos::from_micros(1000));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn bad_quantile_panics() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn zero_duration_recordable() {
        let mut h = Histogram::new();
        h.record(Nanos::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Nanos::ZERO);
    }
}
