//! Discrete-event simulation kernel for SHHC capacity studies.
//!
//! The paper's Figure 1 comes from a purpose-built simulator: "we
//! developed a simulator and used it to compare the throughput of a single
//! hash server to that of a clustered approach". This crate is that
//! simulator's engine, kept general enough for all our capacity
//! experiments:
//!
//! - [`Simulation`] / [`Agent`] — a deterministic event-driven kernel with
//!   a virtual nanosecond clock,
//! - [`FcfsQueue`] — a first-come-first-served multi-server resource for
//!   queueing-model shortcuts,
//! - [`dist`] — seeded samplers (exponential, Poisson, Zipf, log-normal),
//! - [`Histogram`] — log-bucketed latency recording with percentiles.
//!
//! # Examples
//!
//! A one-agent countdown:
//!
//! ```
//! use shhc_sim::{Agent, AgentId, SimCtx, Simulation};
//! use shhc_types::Nanos;
//!
//! struct Countdown(u32);
//!
//! impl Agent<u32> for Countdown {
//!     fn on_event(&mut self, ctx: &mut SimCtx<'_, u32>, left: u32) {
//!         if left > 0 {
//!             ctx.send_self(Nanos::from_micros(10), left - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(7);
//! let id = sim.add_agent(Box::new(Countdown(3)));
//! sim.schedule(Nanos::ZERO, id, 3u32);
//! let end = sim.run();
//! assert_eq!(end, Nanos::from_micros(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod kernel;
mod queueing;
mod stats;

pub use kernel::{Agent, AgentId, SimCtx, Simulation};
pub use queueing::FcfsQueue;
pub use stats::{Histogram, Summary};
