//! First-come-first-served multi-server queue resource.

use shhc_types::Nanos;

/// An FCFS queueing resource with `c` identical servers.
///
/// Jobs are submitted with their arrival time and service demand; the
/// queue returns the completion time. This is the closed-form shortcut for
/// modelling a hash node (or NIC, or disk) inside the event simulator
/// without spawning per-job agents.
///
/// # Examples
///
/// ```
/// use shhc_sim::FcfsQueue;
/// use shhc_types::Nanos;
///
/// let mut q = FcfsQueue::new(1);
/// let us = Nanos::from_micros;
/// assert_eq!(q.submit(us(0), us(10)), us(10));
/// // Arrives while busy: waits for the first job.
/// assert_eq!(q.submit(us(5), us(10)), us(20));
/// // Arrives after idle: starts immediately.
/// assert_eq!(q.submit(us(100), us(10)), us(110));
/// ```
#[derive(Debug, Clone)]
pub struct FcfsQueue {
    /// Next-free time of each server.
    servers: Vec<Nanos>,
    jobs: u64,
    busy_total: Nanos,
    wait_total: Nanos,
}

impl FcfsQueue {
    /// Creates a queue with `servers` identical service units.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        FcfsQueue {
            servers: vec![Nanos::ZERO; servers],
            jobs: 0,
            busy_total: Nanos::ZERO,
            wait_total: Nanos::ZERO,
        }
    }

    /// Submits a job arriving at `now` demanding `service` time; returns
    /// its completion time.
    ///
    /// FCFS discipline: the job takes the earliest-free server; its start
    /// time is `max(now, server_free)`.
    pub fn submit(&mut self, now: Nanos, service: Nanos) -> Nanos {
        let (idx, &free_at) = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("at least one server");
        let start = now.max(free_at);
        let done = start + service;
        self.servers[idx] = done;
        self.jobs += 1;
        self.busy_total += service;
        self.wait_total += start - now;
        done
    }

    /// Earliest time any server becomes free.
    pub fn next_free(&self) -> Nanos {
        *self.servers.iter().min().expect("at least one server")
    }

    /// Number of jobs submitted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total service time consumed.
    pub fn busy_total(&self) -> Nanos {
        self.busy_total
    }

    /// Mean queueing delay (time between arrival and service start).
    pub fn mean_wait(&self) -> Nanos {
        if self.jobs == 0 {
            Nanos::ZERO
        } else {
            self.wait_total / self.jobs
        }
    }

    /// Utilization relative to a time horizon: busy time / (servers ×
    /// horizon). Values near 1.0 mean saturation.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            return 0.0;
        }
        self.busy_total.as_nanos() as f64 / (self.servers.len() as u64 * horizon.as_nanos()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn single_server_serializes() {
        let mut q = FcfsQueue::new(1);
        assert_eq!(q.submit(us(0), us(10)), us(10));
        assert_eq!(q.submit(us(0), us(10)), us(20));
        assert_eq!(q.submit(us(0), us(10)), us(30));
        assert_eq!(q.mean_wait(), us(10)); // waits 0, 10, 20
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut q = FcfsQueue::new(2);
        assert_eq!(q.submit(us(0), us(10)), us(10));
        assert_eq!(q.submit(us(0), us(10)), us(10));
        assert_eq!(q.submit(us(0), us(10)), us(20));
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut q = FcfsQueue::new(1);
        q.submit(us(0), us(5));
        assert_eq!(q.submit(us(50), us(5)), us(55));
        assert_eq!(q.mean_wait(), Nanos::ZERO);
    }

    #[test]
    fn utilization_reflects_load() {
        let mut q = FcfsQueue::new(2);
        q.submit(us(0), us(50));
        q.submit(us(0), us(50));
        let u = q.utilization(us(100));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn next_free_tracks_earliest_server() {
        let mut q = FcfsQueue::new(2);
        q.submit(us(0), us(10));
        q.submit(us(0), us(30));
        assert_eq!(q.next_free(), us(10));
    }
}
