//! Closed-loop controller for [`SharedBatcher`] close limits.
//!
//! The static size/age limits PR 3 introduced are tuned for uniform
//! SHA-1 traffic. When the offered load or its skew shifts, a fixed
//! configuration either closes batches too small (wasting the per-batch
//! round-trip overhead) or lets fingerprints queue too long (blowing the
//! latency tail). [`BatchTuner`] watches the batcher's own counters —
//! close-reason mix, windowed occupancy, and the
//! [`delay_quantile`](crate::SharedBatcherStats::delay_quantile) tail —
//! and retunes the limits AIMD-style via
//! [`set_limits`](SharedBatcher::set_limits):
//!
//! - **tail too high** (window p99 above target): multiplicative
//!   decrease of both limits — close earlier, smaller;
//! - **size-dominated closes** with the tail under target: additive
//!   increase of the size limit — the stream is dense, bigger batches
//!   amortize the round-trip for free;
//! - **age-dominated closes** with the tail far under target: grow the
//!   age limit toward the target — a sparse stream may wait longer to
//!   aggregate more.
//!
//! The controller only changes *when* batches close, never their content
//! or ticket wiring, so answers are byte-identical to an untuned
//! front-end (the equivalence the tier-1 suite pins down).

use std::time::{Duration, Instant};

use crate::SharedBatcher;

/// Control knobs and actuation bounds for [`BatchTuner`].
#[derive(Debug, Clone, Copy)]
pub struct TunerConfig {
    /// Lower bound on the size limit.
    pub min_size: usize,
    /// Upper bound on the size limit.
    pub max_size: usize,
    /// Lower bound on the age limit.
    pub min_age: Duration,
    /// Upper bound on the age limit.
    pub max_age: Duration,
    /// Target p99 queueing delay; the controller keeps the observed tail
    /// at or under this.
    pub target_delay: Duration,
    /// Minimum time between adjustments (a tick inside the interval is a
    /// no-op). Zero means every tick may adjust — handy in tests.
    pub interval: Duration,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            min_size: 4,
            max_size: 4096,
            min_age: Duration::from_micros(100),
            max_age: Duration::from_millis(100),
            target_delay: Duration::from_millis(10),
            interval: Duration::from_millis(10),
        }
    }
}

/// What one [`BatchTuner::tick`] observed and decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerTick {
    /// Batches released since the previous adjustment.
    pub window_batches: u64,
    /// p99 queueing delay over the window's samples. The sample buffer
    /// is a ring of the most recent delays, so this stays a live tail
    /// signal at any uptime (falls back to the window mean only when the
    /// window outran the ring entirely).
    pub window_p99: Option<Duration>,
    /// Size limit after this tick.
    pub size: usize,
    /// Age limit after this tick.
    pub age: Duration,
    /// Whether the limits changed.
    pub adjusted: bool,
}

/// Snapshot of the counters the windowed deltas are computed against.
#[derive(Debug, Clone, Copy, Default)]
struct Baseline {
    batches: u64,
    closed_by_size: u64,
    closed_by_age: u64,
    delay_count: u64,
    delay_total_ns: u128,
}

/// AIMD controller over a [`SharedBatcher`]'s close limits (see the
/// [module docs](self) for the policy).
///
/// The tuner is driven from whatever thread already owns the batcher's
/// timing — in `shhc` core, the front-end's flusher loop — by calling
/// [`tick`](BatchTuner::tick) periodically. It keeps only counter
/// baselines between ticks; the batcher remains the single source of
/// truth.
#[derive(Debug)]
pub struct BatchTuner {
    config: TunerConfig,
    baseline: Baseline,
    last_adjust: Option<Instant>,
}

impl BatchTuner {
    /// Creates a tuner with the given knobs.
    pub fn new(config: TunerConfig) -> Self {
        BatchTuner {
            config,
            baseline: Baseline::default(),
            last_adjust: None,
        }
    }

    /// The tuner's knobs.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Observes the batcher and, at most once per
    /// [`interval`](TunerConfig::interval), retunes its limits. Returns
    /// `None` when inside the interval or when the window saw no
    /// batches (nothing to learn from an idle front-end).
    pub fn tick<V>(&mut self, batcher: &SharedBatcher<V>) -> Option<TunerTick> {
        let now = Instant::now();
        if let Some(last) = self.last_adjust {
            if now.duration_since(last) < self.config.interval {
                return None;
            }
        }
        let stats = batcher.stats();
        let window_batches = stats.batches - self.baseline.batches;
        if window_batches == 0 {
            // Idle window: re-arm the interval so a burst after idling
            // is measured over its own window, not the idle gap.
            self.last_adjust = Some(now);
            return None;
        }
        let size_closes = stats.closed_by_size - self.baseline.closed_by_size;
        let age_closes = stats.closed_by_age - self.baseline.closed_by_age;
        // Tail over this window's fresh samples. The sample buffer is a
        // ring of the most recent delays (oldest first), so the window's
        // samples are its *last* `window_count` entries — still live
        // after the ring has wrapped many times over. Only when the
        // window itself outran the ring (more new delays than the ring
        // holds) do the surviving samples not cover it exactly; they are
        // then still the window's most recent tail, which is the signal
        // the controller wants anyway.
        let window_count = (stats.delay_count - self.baseline.delay_count) as usize;
        let retained = stats.delay_samples_ns.len();
        let fresh = &stats.delay_samples_ns[retained - window_count.min(retained)..];
        let window_p99 = if fresh.is_empty() {
            let count = stats.delay_count - self.baseline.delay_count;
            if count == 0 {
                None
            } else {
                let total = stats.delay_total_ns - self.baseline.delay_total_ns;
                Some(Duration::from_nanos((total / u128::from(count)) as u64))
            }
        } else {
            let mut sorted = fresh.to_vec();
            sorted.sort_unstable();
            let rank = ((sorted.len() - 1) as f64 * 0.99).round() as usize;
            Some(Duration::from_nanos(sorted[rank]))
        };

        let mut size = batcher.max_size();
        let mut age = batcher.max_age();
        let (old_size, old_age) = (size, age);
        if let Some(p99) = window_p99 {
            if p99 > self.config.target_delay {
                // Multiplicative decrease: the tail blew the target —
                // close batches earlier and smaller.
                size = (size / 2).max(self.config.min_size);
                age = (age / 2).max(self.config.min_age);
            } else if size_closes >= age_closes {
                // Dense stream, healthy tail: additive increase of the
                // size limit to amortize more per round-trip.
                let step = (size / 8).max(1);
                size = (size + step).min(self.config.max_size);
            } else if p99 * 2 < self.config.target_delay {
                // Sparse stream closing on age with lots of headroom:
                // wait longer to aggregate more.
                age = (age + age / 2)
                    .min(self.config.max_age)
                    .min(self.config.target_delay);
            }
        }

        let adjusted = size != old_size || age != old_age;
        if adjusted {
            batcher.set_limits(size, age);
        }
        self.baseline = Baseline {
            batches: stats.batches,
            closed_by_size: stats.closed_by_size,
            closed_by_age: stats.closed_by_age,
            delay_count: stats.delay_count,
            delay_total_ns: stats.delay_total_ns,
        };
        self.last_adjust = Some(now);
        Some(TunerTick {
            window_batches,
            window_p99,
            size,
            age,
            adjusted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shhc_types::Fingerprint;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::from_u64(v)
    }

    fn tuner(target: Duration) -> BatchTuner {
        BatchTuner::new(TunerConfig {
            min_size: 2,
            max_size: 64,
            min_age: Duration::from_micros(100),
            max_age: Duration::from_millis(50),
            target_delay: target,
            interval: Duration::ZERO,
        })
    }

    fn drain(batcher: &SharedBatcher<u64>, n: u64, size: usize) {
        let mut open: Vec<crate::Ticket<u64>> = Vec::new();
        for i in 0..n {
            let s = batcher.submit(fp(i));
            open.push(s.ticket);
            if let Some(b) = s.closed {
                let answers = vec![0; b.len()];
                b.complete(answers).unwrap();
            }
        }
        let _ = size;
        if let Some(b) = batcher.flush() {
            let answers = vec![0; b.len()];
            b.complete(answers).unwrap();
        }
        for t in open {
            let _ = t.wait();
        }
    }

    #[test]
    fn idle_window_is_a_noop() {
        let b: SharedBatcher<u64> = SharedBatcher::new(8, Duration::from_millis(5));
        let mut t = tuner(Duration::from_millis(10));
        assert!(t.tick(&b).is_none());
        assert_eq!(b.max_size(), 8);
    }

    #[test]
    fn dense_stream_grows_size_limit() {
        let b: SharedBatcher<u64> = SharedBatcher::new(8, Duration::from_millis(50));
        // Generous target: sub-millisecond in-process delays never trip it.
        let mut t = tuner(Duration::from_secs(1));
        drain(&b, 64, 8); // all size closes, tiny delays
        let tick = t.tick(&b).expect("active window");
        assert!(tick.adjusted);
        assert!(tick.size > 8, "size limit should grow, got {}", tick.size);
        assert_eq!(b.max_size(), tick.size);
        // Repeated healthy windows keep growing up to the cap.
        for _ in 0..40 {
            drain(&b, 256, 0);
            t.tick(&b);
        }
        assert_eq!(b.max_size(), 64, "capped at max_size");
    }

    #[test]
    fn blown_tail_shrinks_both_limits() {
        let b: SharedBatcher<u64> = SharedBatcher::new(32, Duration::from_millis(50));
        // Impossible target: every observed delay exceeds it.
        let mut t = tuner(Duration::ZERO);
        drain(&b, 64, 32);
        let tick = t.tick(&b).expect("active window");
        assert!(tick.adjusted);
        assert!(tick.size < 32, "size should halve, got {}", tick.size);
        assert!(tick.age < Duration::from_millis(50));
        // Floors hold under sustained pressure.
        for _ in 0..20 {
            drain(&b, 64, 0);
            t.tick(&b);
        }
        assert_eq!(b.max_size(), 2);
        assert_eq!(b.max_age(), Duration::from_micros(100));
    }

    /// Regression: the windowed p99 used to read "fresh" samples as
    /// everything past a high-water mark in an *append-only* sample
    /// buffer, so once the buffer hit its cap the slice was empty
    /// forever and the controller silently fell back to the lifetime
    /// window mean — blind to the tail. With the ring of recent samples
    /// the tail signal stays live after saturation.
    #[test]
    fn window_p99_survives_sample_ring_saturation() {
        let b: SharedBatcher<u64> = SharedBatcher::new(8, Duration::from_secs(60));
        // Tiny ring so saturation is cheap to reach.
        b.set_delay_sample_cap_for_test(64);
        let mut t = tuner(Duration::from_secs(1));
        // Saturate the ring well past its cap with near-zero delays and
        // establish a baseline.
        drain(&b, 256, 8);
        let stats = b.stats();
        assert!(
            stats.delay_count > 64 && stats.delay_samples_ns.len() == 64,
            "ring saturated: {} recorded, {} retained",
            stats.delay_count,
            stats.delay_samples_ns.len()
        );
        t.tick(&b).expect("baseline tick");
        // New window: 97 fast entries in one size-closed batch shape,
        // then a 3-entry batch that waits ~30 ms before a flush. The
        // window's p99 rank lands on a slow sample; its *mean* is under
        // a millisecond — so a mean fallback would report a healthy tail
        // while the real tail is 30 ms.
        drain(&b, 96, 8);
        let slow: Vec<crate::Ticket<u64>> = (0..4).map(|i| b.submit(fp(1000 + i)).ticket).collect();
        std::thread::sleep(Duration::from_millis(30));
        let batch = b.flush().expect("slow batch pending");
        let n = batch.len();
        batch.complete(vec![0; n]).unwrap();
        for ticket in slow {
            let _ = ticket.wait();
        }
        let tick = t.tick(&b).expect("active window");
        let p99 = tick.window_p99.expect("window had samples");
        assert!(
            p99 >= Duration::from_millis(20),
            "post-saturation window p99 must see the 30 ms tail, got {p99:?}"
        );
    }

    #[test]
    fn interval_rate_limits_adjustments() {
        let b: SharedBatcher<u64> = SharedBatcher::new(8, Duration::from_millis(50));
        let mut t = BatchTuner::new(TunerConfig {
            interval: Duration::from_secs(3600),
            ..TunerConfig::default()
        });
        drain(&b, 64, 8);
        assert!(t.tick(&b).is_some(), "first tick adjusts");
        drain(&b, 64, 8);
        assert!(t.tick(&b).is_none(), "second tick inside the interval");
    }
}
