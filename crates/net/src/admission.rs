//! Admission control for the shared front-end: bounded queues, fail-fast
//! shedding and per-tenant fairness.
//!
//! The paper's Figure 4 puts *multiple* web front-ends between millions
//! of backup clients and the hash cluster precisely because an ingest
//! point with an unbounded queue does not degrade — it collapses: past
//! saturation every queued request waits behind every other one, tail
//! latency grows without bound, and memory follows. This module is the
//! bound. Every submission to a [`SharedBatcher`](crate::SharedBatcher)
//! must first acquire an [`AdmissionToken`]; the token is held until the
//! submission's ticket is answered (or dropped), so the policy limits
//! **outstanding admitted work** — queued *plus* in flight — which is the
//! quantity that actually grows without bound under overload:
//!
//! - [`AdmissionPolicy::Block`] — producers wait for a token: classic
//!   backpressure, nothing is ever lost, arrival pacing degrades to the
//!   service rate,
//! - [`AdmissionPolicy::Shed`] — fail fast: a submission past the bound
//!   resolves immediately as [`Error::Overloaded`], keeping latency for
//!   *admitted* requests bounded,
//! - [`AdmissionPolicy::FairShed`] — shed, plus per-tenant token
//!   accounting: one noisy tenant saturating its quota cannot push a
//!   quiet tenant's traffic out of the queue.
//!
//! Token release also records the **admitted latency** — admission to
//! answer — into a bounded ring of recent samples, so p99/p999 for the
//! requests the system chose to serve stay observable at any uptime.
//!
//! [`IngestModel`] is the companion capacity model: a token bucket
//! bounding the *rate* a front-end accepts work (the web front-end's
//! HTTP/SSL/hash CPU, the resource Figure 4 scales out by adding
//! front-ends), where the admission bound limits *occupancy*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use shhc_types::{Error, Result};

use crate::SampleRing;

/// Retained admitted-latency samples (ring of the most recent).
pub(crate) const LATENCY_SAMPLE_CAP: usize = 1 << 18;

/// Default bound on outstanding admitted submissions for batchers that
/// do not configure a policy explicitly — generous enough that healthy
/// workloads never notice, finite so a stalled dispatcher can no longer
/// grow the pending queue without bound.
pub const DEFAULT_MAX_PENDING: usize = 1 << 16;

/// How a [`SharedBatcher`](crate::SharedBatcher) responds when admitting
/// one more submission would exceed its outstanding-work bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until outstanding work drops below
    /// `max_pending` — backpressure; no submission is ever lost, but
    /// producers slow to the service rate. Requires someone to keep
    /// draining (a size-closing peer or an age flusher), as the blocked
    /// thread itself cannot.
    Block {
        /// Bound on outstanding admitted submissions (queued + in
        /// flight).
        max_pending: usize,
    },
    /// Fail fast: a submission past `max_pending` resolves its ticket
    /// immediately with [`Error::Overloaded`]. Latency for admitted
    /// requests stays bounded by `max_pending / service_rate`.
    Shed {
        /// Bound on outstanding admitted submissions (queued + in
        /// flight).
        max_pending: usize,
    },
    /// [`Shed`](AdmissionPolicy::Shed) with per-tenant token accounting:
    /// a submission is also shed when *its tenant* already holds
    /// `per_tenant_quota` outstanding tokens, so one noisy tenant
    /// saturates its own quota instead of the whole queue.
    FairShed {
        /// Bound on outstanding admitted submissions across all tenants.
        max_pending: usize,
        /// Bound on one tenant's outstanding admitted submissions.
        per_tenant_quota: usize,
    },
}

impl Default for AdmissionPolicy {
    /// Blocking admission at [`DEFAULT_MAX_PENDING`] — the
    /// backwards-compatible bound: nothing is shed, nothing is lost, and
    /// the formerly unbounded pending queue is finally finite.
    fn default() -> Self {
        AdmissionPolicy::Block {
            max_pending: DEFAULT_MAX_PENDING,
        }
    }
}

impl AdmissionPolicy {
    /// The outstanding-work bound of this policy.
    pub fn max_pending(&self) -> usize {
        match *self {
            AdmissionPolicy::Block { max_pending }
            | AdmissionPolicy::Shed { max_pending }
            | AdmissionPolicy::FairShed { max_pending, .. } => max_pending,
        }
    }

    /// Whether this policy sheds (fails fast) rather than blocks.
    pub fn sheds(&self) -> bool {
        !matches!(self, AdmissionPolicy::Block { .. })
    }
}

/// A token-bucket model of a front-end's ingest capacity: at most
/// `rate_per_sec` submissions per second sustained, with `burst` of
/// headroom for arrival jitter. This stands in for the web front-end's
/// client-facing CPU (HTTP, SSL, fingerprint extraction) — the resource
/// the paper scales out by deploying front-ends in a tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestModel {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Bucket depth: admissions that may arrive back-to-back before the
    /// rate limit engages.
    pub burst: f64,
}

impl IngestModel {
    /// A model admitting `rate_per_sec` sustained with a small default
    /// burst of one batch's worth.
    pub fn per_sec(rate_per_sec: f64) -> Self {
        IngestModel {
            rate_per_sec,
            burst: 64.0,
        }
    }
}

/// The token bucket behind [`IngestModel`], advanced lazily on access.
#[derive(Debug)]
pub(crate) struct IngestBucket {
    model: IngestModel,
    tokens: f64,
    last_refill: Instant,
}

impl IngestBucket {
    pub(crate) fn new(model: IngestModel) -> Self {
        IngestBucket {
            model,
            tokens: model.burst.max(1.0),
            last_refill: Instant::now(),
        }
    }

    /// Takes one token if available; otherwise returns how long until one
    /// accrues.
    pub(crate) fn try_take(&mut self, now: Instant) -> std::result::Result<(), Duration> {
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.model.rate_per_sec).min(self.model.burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(
                deficit / self.model.rate_per_sec.max(f64::MIN_POSITIVE),
            ))
        }
    }
}

/// Outstanding-token counts, under the gate mutex.
#[derive(Debug, Default)]
struct Counts {
    /// Tokens currently held (admitted submissions not yet answered).
    outstanding: usize,
    /// Per-tenant outstanding tokens (only maintained under
    /// [`AdmissionPolicy::FairShed`]). Entries are removed at zero so the
    /// map stays proportional to *active* tenants.
    per_tenant: std::collections::HashMap<u32, usize>,
    /// Completed-request latency accounting (admission → answer).
    latency: SampleRing,
    latency_total_ns: u128,
    latency_max_ns: u64,
}

/// Shared admission state: the gate every submission passes and every
/// token release notifies.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    policy: AdmissionPolicy,
    counts: Mutex<Counts>,
    space: Condvar,
    /// Submissions admitted (tokens ever issued).
    admitted: AtomicU64,
    /// Submissions shed with [`Error::Overloaded`].
    shed: AtomicU64,
    /// Of the shed submissions, those denied by a tenant quota rather
    /// than the global bound.
    shed_by_tenant: AtomicU64,
    /// Times a submission had to wait (blocking policy or ingest rate).
    blocked: AtomicU64,
}

/// Snapshot of admission counters for
/// [`SharedBatcherStats`](crate::SharedBatcherStats).
#[derive(Debug, Clone, Default)]
pub(crate) struct AdmissionSnapshot {
    pub admitted: u64,
    pub shed: u64,
    pub shed_by_tenant: u64,
    pub blocked: u64,
    pub outstanding: usize,
    pub latency_count: u64,
    pub latency_total_ns: u128,
    pub latency_max_ns: u64,
    pub latency_samples_ns: Vec<u64>,
}

impl AdmissionGate {
    pub(crate) fn new(policy: AdmissionPolicy) -> Arc<Self> {
        Arc::new(AdmissionGate {
            policy,
            counts: Mutex::new(Counts {
                latency: SampleRing::new(LATENCY_SAMPLE_CAP),
                ..Counts::default()
            }),
            space: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_by_tenant: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
        })
    }

    pub(crate) fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Admits one submission for `tenant`, blocking or shedding per the
    /// policy. On success the returned token must be held until the
    /// submission is answered.
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when a shedding policy is past its bound.
    pub(crate) fn admit(self: &Arc<Self>, tenant: Option<u32>) -> Result<AdmissionToken> {
        let max_pending = self.policy.max_pending();
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if counts.outstanding < max_pending {
                break;
            }
            match self.policy {
                AdmissionPolicy::Block { .. } => {
                    self.blocked.fetch_add(1, Ordering::Relaxed);
                    // Timed wait as a defensive measure: correctness only
                    // needs the notify on token release, but a bounded
                    // re-check keeps a lost wakeup from becoming a hang.
                    let (guard, _) = self
                        .space
                        .wait_timeout(counts, Duration::from_millis(10))
                        .unwrap_or_else(|e| e.into_inner());
                    counts = guard;
                }
                AdmissionPolicy::Shed { .. } | AdmissionPolicy::FairShed { .. } => {
                    drop(counts);
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::overloaded(format!(
                        "front-end past its admission bound of {max_pending} outstanding"
                    )));
                }
            }
        }
        if let AdmissionPolicy::FairShed {
            per_tenant_quota, ..
        } = self.policy
        {
            let key = tenant.unwrap_or(u32::MAX);
            let held = counts.per_tenant.entry(key).or_insert(0);
            if *held >= per_tenant_quota {
                drop(counts);
                self.shed.fetch_add(1, Ordering::Relaxed);
                self.shed_by_tenant.fetch_add(1, Ordering::Relaxed);
                return Err(Error::overloaded(format!(
                    "tenant {key} past its admission quota of {per_tenant_quota} outstanding"
                )));
            }
            *held += 1;
        }
        counts.outstanding += 1;
        drop(counts);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionToken {
            gate: Arc::clone(self),
            tenant,
            admitted_at: Instant::now(),
        })
    }

    pub(crate) fn note_blocked(&self) {
        self.blocked.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a shed decided outside the gate (e.g. ingest-rate pacing
    /// under a shedding policy).
    pub(crate) fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Admitted submissions not yet answered — cheap (no sample clone),
    /// for load-balancing reads.
    pub(crate) fn outstanding(&self) -> usize {
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .outstanding
    }

    fn release(&self, tenant: Option<u32>, admitted_at: Instant) {
        let latency_ns = admitted_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        counts.outstanding = counts.outstanding.saturating_sub(1);
        if matches!(self.policy, AdmissionPolicy::FairShed { .. }) {
            let key = tenant.unwrap_or(u32::MAX);
            if let Some(held) = counts.per_tenant.get_mut(&key) {
                *held = held.saturating_sub(1);
                if *held == 0 {
                    counts.per_tenant.remove(&key);
                }
            }
        }
        counts.latency.push(latency_ns);
        counts.latency_total_ns += u128::from(latency_ns);
        counts.latency_max_ns = counts.latency_max_ns.max(latency_ns);
        drop(counts);
        self.space.notify_all();
    }

    pub(crate) fn snapshot(&self) -> AdmissionSnapshot {
        let counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        AdmissionSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            shed_by_tenant: self.shed_by_tenant.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            outstanding: counts.outstanding,
            latency_count: counts.latency.seen(),
            latency_total_ns: counts.latency_total_ns,
            latency_max_ns: counts.latency_max_ns,
            latency_samples_ns: counts.latency.snapshot(),
        }
    }
}

/// Proof of admission: held from submit until the submission's ticket is
/// answered. Dropping the token releases the admission slot and records
/// the admitted latency.
#[derive(Debug)]
pub(crate) struct AdmissionToken {
    gate: Arc<AdmissionGate>,
    tenant: Option<u32>,
    admitted_at: Instant,
}

impl Drop for AdmissionToken {
    fn drop(&mut self) {
        self.gate.release(self.tenant, self.admitted_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_bounded_block() {
        let p = AdmissionPolicy::default();
        assert_eq!(p.max_pending(), DEFAULT_MAX_PENDING);
        assert!(!p.sheds());
        assert!(AdmissionPolicy::Shed { max_pending: 4 }.sheds());
    }

    #[test]
    fn shed_past_bound_fails_fast_and_release_reopens() {
        let gate = AdmissionGate::new(AdmissionPolicy::Shed { max_pending: 2 });
        let t1 = gate.admit(None).unwrap();
        let _t2 = gate.admit(None).unwrap();
        let err = gate.admit(None).unwrap_err();
        assert!(err.is_overload(), "{err}");
        drop(t1);
        let _t3 = gate.admit(None).expect("release reopened a slot");
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.outstanding, 2);
        assert_eq!(snap.latency_count, 1, "one release recorded a latency");
    }

    #[test]
    fn fair_shed_enforces_tenant_quota_before_global_bound() {
        let gate = AdmissionGate::new(AdmissionPolicy::FairShed {
            max_pending: 100,
            per_tenant_quota: 2,
        });
        let _a1 = gate.admit(Some(7)).unwrap();
        let a2 = gate.admit(Some(7)).unwrap();
        let err = gate.admit(Some(7)).unwrap_err();
        assert!(err.is_overload(), "{err}");
        // A different tenant is unaffected by tenant 7's saturation.
        let _b1 = gate.admit(Some(8)).unwrap();
        let snap = gate.snapshot();
        assert_eq!(snap.shed_by_tenant, 1);
        // Releasing one of tenant 7's tokens reopens its quota.
        drop(a2);
        let _a3 = gate.admit(Some(7)).unwrap();
    }

    #[test]
    fn block_waits_for_a_release() {
        let gate = AdmissionGate::new(AdmissionPolicy::Block { max_pending: 1 });
        let t1 = gate.admit(None).unwrap();
        let gate2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            let _t = gate2.admit(None).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "blocked while the slot is held");
        drop(t1);
        waiter.join().unwrap();
        assert!(gate.snapshot().blocked >= 1);
    }

    #[test]
    fn ingest_bucket_paces_to_its_rate() {
        let mut bucket = IngestBucket::new(IngestModel {
            rate_per_sec: 1000.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        assert!(bucket.try_take(t0).is_ok());
        assert!(bucket.try_take(t0).is_ok());
        let wait = bucket.try_take(t0).unwrap_err();
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(2));
        // After the advertised wait a token has accrued.
        assert!(bucket
            .try_take(t0 + wait + Duration::from_micros(10))
            .is_ok());
    }
}
