//! Networking substrate for the SHHC cluster.
//!
//! The paper's cluster nodes talk over 1 GbE; the front-ends "aggregate
//! fingerprints from clients and send them as a batch to hybrid nodes".
//! This crate provides the pieces that stand in for that fabric:
//!
//! - [`Frame`] + [`encode`]/[`decode`] — a length-prefixed, versioned wire
//!   format (messages really are serialized to bytes, so per-message and
//!   per-byte costs are real),
//! - [`NetModel`] — the link cost model (per-message overhead, RTT,
//!   bandwidth) used to account virtual network time,
//! - [`ChannelTransport`] — an in-process duplex byte transport over
//!   crossbeam channels for the threaded cluster,
//! - [`Batcher`] — per-session fingerprint aggregation with size and age
//!   limits (virtual-time; the simulator's and the synchronous
//!   front-end's building block),
//! - [`SharedBatcher`] + [`Ticket`] — the thread-safe *cross-client*
//!   aggregator behind the paper's Figure-4 request flow: submissions
//!   from any client thread join one shared queue and receive a blocking
//!   completion ticket; one cluster round-trip answers a whole batch
//!   through index-mapped demux,
//! - [`AdmissionPolicy`] + [`IngestModel`] — bounded admission in front
//!   of the shared queue: blocking backpressure, fail-fast shedding
//!   (`Error::Overloaded`), or per-tenant fair shedding, plus a
//!   token-bucket ingest-rate model, so a front-end degrades gracefully
//!   instead of queue-collapsing past saturation,
//! - [`BatchTuner`] — an AIMD controller that retunes a live
//!   [`SharedBatcher`]'s close limits from its own counters (close-reason
//!   mix, occupancy, p99 queueing delay), keeping throughput near the
//!   hand-tuned optimum when the workload shifts.
//!
//! # Examples
//!
//! ```
//! use shhc_net::{decode, encode, Frame};
//! use shhc_types::{Fingerprint, StreamId};
//!
//! let frame = Frame::LookupInsertReq {
//!     correlation: 7,
//!     stream: StreamId::new(1),
//!     fingerprints: vec![Fingerprint::from_u64(42)],
//! };
//! let bytes = encode(&frame);
//! assert_eq!(decode(&bytes).unwrap(), frame);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod admission;
mod batch;
mod model;
mod samples;
mod shared;
mod transport;
mod wire;

pub use adaptive::{BatchTuner, TunerConfig, TunerTick};
pub use admission::{AdmissionPolicy, IngestModel, DEFAULT_MAX_PENDING};
pub use batch::{Batch, Batcher};
pub use model::NetModel;
pub use samples::SampleRing;
pub use shared::{CloseReason, ClosedBatch, SharedBatcher, SharedBatcherStats, Submitted, Ticket};
pub use transport::{duplex, ChannelTransport, TransportStats};
pub use wire::{
    decode, encode, encode_into, encode_reusing, encoded_len, lookup_req_len, lookup_resp_len,
    Frame, WIRE_VERSION,
};
