//! In-process duplex byte transport over crossbeam channels.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use shhc_types::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters shared by both ends of a transport pair.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Messages sent through either endpoint.
    pub messages: AtomicU64,
    /// Payload bytes sent through either endpoint.
    pub bytes: AtomicU64,
}

impl TransportStats {
    /// Snapshot of (messages, bytes).
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }
}

/// One endpoint of an in-process duplex link carrying encoded frames.
///
/// Stands in for a TCP connection between a front-end and a hash node:
/// payloads are opaque [`Bytes`] (already wire-encoded), delivery is
/// FIFO, and a dropped peer surfaces as [`Error::Unavailable`].
///
/// # Examples
///
/// ```
/// use shhc_net::duplex;
/// use bytes::Bytes;
///
/// let (a, b) = duplex();
/// a.send(Bytes::from_static(b"hello")).unwrap();
/// assert_eq!(b.recv().unwrap(), Bytes::from_static(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    stats: Arc<TransportStats>,
}

/// Creates a connected pair of endpoints.
pub fn duplex() -> (ChannelTransport, ChannelTransport) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let stats = Arc::new(TransportStats::default());
    (
        ChannelTransport {
            tx: tx_ab,
            rx: rx_ba,
            stats: Arc::clone(&stats),
        },
        ChannelTransport {
            tx: tx_ba,
            rx: rx_ab,
            stats,
        },
    )
}

impl ChannelTransport {
    /// Sends one encoded frame.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] if the peer endpoint was dropped.
    pub fn send(&self, frame: Bytes) -> Result<()> {
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.tx
            .send(frame)
            .map_err(|_| Error::Unavailable("transport peer disconnected".into()))
    }

    /// Blocks until a frame arrives.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] if the peer endpoint was dropped with no
    /// pending frames.
    pub fn recv(&self) -> Result<Bytes> {
        self.rx
            .recv()
            .map_err(|_| Error::Unavailable("transport peer disconnected".into()))
    }

    /// Waits up to `timeout` for a frame; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] if the peer endpoint was dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(Error::Unavailable("transport peer disconnected".into()))
            }
        }
    }

    /// Non-blocking receive; `Ok(None)` when no frame is queued.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] if the peer endpoint was dropped.
    pub fn try_recv(&self) -> Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(Error::Unavailable("transport peer disconnected".into()))
            }
        }
    }

    /// Shared counters for this link.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_fifo() {
        let (a, b) = duplex();
        for i in 0..10u8 {
            a.send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap()[0], i);
        }
        b.send(Bytes::from_static(b"reply")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"reply"));
    }

    #[test]
    fn disconnect_surfaces_as_unavailable() {
        let (a, b) = duplex();
        drop(b);
        assert!(matches!(
            a.send(Bytes::from_static(b"x")),
            Err(Error::Unavailable(_))
        ));
        assert!(matches!(a.recv(), Err(Error::Unavailable(_))));
    }

    #[test]
    fn pending_frames_survive_peer_drop() {
        let (a, b) = duplex();
        a.send(Bytes::from_static(b"last words")).unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"last words"));
        assert!(matches!(b.recv(), Err(Error::Unavailable(_))));
    }

    #[test]
    fn try_recv_and_timeout() {
        let (a, b) = duplex();
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        a.send(Bytes::from_static(b"now")).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(Bytes::from_static(b"now")));
    }

    #[test]
    fn stats_count_both_directions() {
        let (a, b) = duplex();
        a.send(Bytes::from_static(b"12345")).unwrap();
        b.send(Bytes::from_static(b"123")).unwrap();
        let (msgs, bytes) = a.stats().snapshot();
        assert_eq!(msgs, 2);
        assert_eq!(bytes, 8);
    }

    #[test]
    fn cross_thread_usage() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || {
            let got = b.recv().unwrap();
            b.send(got).unwrap();
        });
        a.send(Bytes::from_static(b"echo")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"echo"));
        handle.join().unwrap();
    }
}
