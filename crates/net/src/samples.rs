//! A bounded ring of recent samples for long-running statistics.
//!
//! Front-ends run indefinitely; any stats buffer that only *appends* is
//! either unbounded or goes blind once full. [`SampleRing`] keeps the
//! most recent `cap` samples by overwriting the oldest, so quantiles
//! computed from a snapshot always describe *current* behaviour at any
//! uptime — the property the [`BatchTuner`](crate::BatchTuner) windowed
//! p99 and the admission latency tail both rely on.

/// Default capacity for delay/latency rings: bounded memory (~2 MiB of
/// `u64` worst case) while far exceeding any control window.
pub(crate) const DELAY_SAMPLE_CAP: usize = 1 << 18;

/// A fixed-capacity ring of the most recent `u64` samples.
///
/// Pushing past capacity overwrites the oldest sample;
/// [`snapshot`](SampleRing::snapshot) returns the retained samples
/// oldest-first, and [`seen`](SampleRing::seen) counts every sample ever
/// pushed (so callers can window by count delta even across overwrites).
#[derive(Debug, Clone)]
pub struct SampleRing {
    buf: Vec<u64>,
    cap: usize,
    next: usize,
    seen: u64,
}

impl Default for SampleRing {
    fn default() -> Self {
        SampleRing::new(DELAY_SAMPLE_CAP)
    }
}

impl SampleRing {
    /// Creates a ring retaining the most recent `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "sample ring capacity must be nonzero");
        SampleRing {
            buf: Vec::new(),
            cap,
            next: 0,
            seen: 0,
        }
    }

    /// Records one sample, evicting the oldest when full.
    pub fn push(&mut self, sample: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(sample);
        } else {
            self.buf[self.next] = sample;
        }
        self.next = (self.next + 1) % self.cap;
        self.seen += 1;
    }

    /// Samples currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total samples ever pushed, including overwritten ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained samples, oldest first.
    pub fn snapshot(&self) -> Vec<u64> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_keeping_most_recent() {
        let mut ring = SampleRing::new(4);
        assert!(ring.is_empty());
        for v in 1..=3 {
            ring.push(v);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 3);
        assert_eq!(ring.snapshot(), vec![1, 2, 3]);
        for v in 4..=10 {
            ring.push(v);
        }
        assert_eq!(ring.len(), 4, "bounded at capacity");
        assert_eq!(ring.seen(), 10, "seen counts overwrites");
        assert_eq!(ring.snapshot(), vec![7, 8, 9, 10], "oldest first");
    }

    #[test]
    fn capacity_one_always_holds_the_latest() {
        let mut ring = SampleRing::new(1);
        for v in 0..100 {
            ring.push(v);
            assert_eq!(ring.snapshot(), vec![v]);
        }
        assert_eq!(ring.seen(), 100);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = SampleRing::new(0);
    }
}
