//! Cross-client fingerprint aggregation with completion tickets.
//!
//! The paper's Figure-4 request flow has one web front-end accepting
//! backup streams from *many concurrent clients* and aggregating their
//! fingerprints into batches before shipping them to hash nodes. The
//! session-local [`Batcher`](crate::Batcher) cannot express that shape:
//! it is `&mut self`, serves one stream, and only notices an expired age
//! limit when the same session pushes again. This module generalizes it:
//!
//! - [`SharedBatcher`] — a thread-safe pending queue any client thread can
//!   submit to; batches close on size, on age (via [`SharedBatcher::poll`],
//!   driven by a timer thread the owner runs), or on explicit flush,
//! - [`Ticket`] — the completion handle a submission receives: a blocking
//!   one-shot that later yields that fingerprint's answer,
//! - [`ClosedBatch`] — a released batch plus the answer slots of every
//!   ticket in it; one cluster round-trip answers them all through
//!   index-mapped demux ([`ClosedBatch::complete`]).
//!
//! The aggregator is generic over the answer type `V` and knows nothing
//! about clusters or dispatch: whoever receives a [`ClosedBatch`] owns the
//! round-trip. Dropping a `ClosedBatch` without completing it fails every
//! ticket in it ([`Error::Unavailable`]) rather than leaving waiters
//! blocked forever.
//!
//! Admission is bounded: every submission first passes the batcher's
//! [`AdmissionPolicy`] (blocking backpressure by default; fail-fast
//! shedding with [`Error::Overloaded`] and per-tenant quotas via
//! [`SharedBatcher::with_admission`]), which limits *outstanding* work —
//! queued plus dispatched-but-unanswered — so a stalled or saturated
//! front-end can no longer grow its queue without bound. See
//! [`AdmissionPolicy`] for the policy menu and
//! [`SharedBatcher::submit_from`] for tenant-attributed submission.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use shhc_net::SharedBatcher;
//! use shhc_types::Fingerprint;
//!
//! let batcher: SharedBatcher<bool> = SharedBatcher::new(2, Duration::from_secs(1));
//! let first = batcher.submit(Fingerprint::from_u64(1));
//! assert!(first.closed.is_none(), "batch still filling");
//! let second = batcher.submit(Fingerprint::from_u64(2));
//! let batch = second.closed.expect("size limit reached");
//! assert_eq!(batch.len(), 2);
//! // The dispatcher answers every ticket in one index-mapped pass.
//! batch.complete(vec![false, true]).unwrap();
//! assert!(!first.ticket.wait().unwrap());
//! assert!(second.ticket.wait().unwrap());
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shhc_types::{Error, Fingerprint, Result};

use crate::admission::{AdmissionGate, AdmissionPolicy, AdmissionToken, IngestBucket, IngestModel};
use crate::samples::SampleRing;

/// One-shot answer cell shared between a [`Ticket`] and its
/// [`AnswerSlot`]: `None` until answered, then the final answer.
struct Cell<V> {
    slot: StdMutex<Option<Result<V>>>,
    ready: Condvar,
}

impl<V> Cell<V> {
    fn new() -> Arc<Self> {
        Arc::new(Cell {
            slot: StdMutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, answer: Result<V>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        // First answer wins; a second fill is unreachable because
        // `AnswerSlot::fill` consumes the slot.
        if slot.is_none() {
            *slot = Some(answer);
        }
        drop(slot);
        self.ready.notify_all();
    }
}

/// The answering half of a completion ticket, held by the batch until the
/// dispatcher resolves it. Dropping an unfilled slot fails the ticket
/// with [`Error::Unavailable`] so waiters never block forever.
struct AnswerSlot<V> {
    cell: Option<Arc<Cell<V>>>,
    /// The admission slot this submission holds; dropped (released, and
    /// its admitted latency recorded) when the answer lands.
    _token: Option<AdmissionToken>,
}

impl<V> AnswerSlot<V> {
    fn fill(mut self, answer: Result<V>) {
        if let Some(cell) = self.cell.take() {
            cell.fill(answer);
        }
        // `self._token` drops here, releasing the admission slot only
        // once the submission is actually answered.
    }
}

impl<V> Drop for AnswerSlot<V> {
    fn drop(&mut self) {
        if let Some(cell) = self.cell.take() {
            cell.fill(Err(Error::Unavailable(
                "front-end dropped the batch without answering its tickets".into(),
            )));
        }
    }
}

/// A completion ticket: the blocking one-shot handle a fingerprint
/// submission receives, later yielding that fingerprint's answer.
///
/// Tickets are answered exactly once — by the dispatcher completing (or
/// failing) the batch, or by the batch being dropped (which surfaces as
/// [`Error::Unavailable`]). Waiting consumes the ticket, so an answer can
/// never be observed twice.
pub struct Ticket<V> {
    cell: Arc<Cell<V>>,
}

impl<V> Ticket<V> {
    /// True once the answer has arrived (a subsequent
    /// [`wait`](Ticket::wait) will not block).
    pub fn is_ready(&self) -> bool {
        self.cell
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Blocks until the fingerprint's answer arrives.
    ///
    /// # Errors
    ///
    /// The dispatch failure, when the batch's cluster round-trip failed;
    /// [`Error::Unavailable`] when the batch was dropped unanswered.
    pub fn wait(self) -> Result<V> {
        let mut slot = self.cell.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            slot = self
                .cell
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`wait`](Ticket::wait), giving up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] when the timeout elapses first; otherwise as
    /// [`wait`](Ticket::wait).
    pub fn wait_timeout(self, timeout: Duration) -> Result<V> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Unavailable("ticket wait timed out".into()));
            }
            let (guard, _) = self
                .cell
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
        }
    }
}

impl<V> std::fmt::Debug for Ticket<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// Why a batch was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The size limit was reached.
    Size,
    /// The oldest entry exceeded the age limit.
    Age,
    /// An explicit flush released the batch.
    Flush,
}

/// A batch released by a [`SharedBatcher`]: the fingerprints in arrival
/// order plus the answer slot of every ticket in it.
///
/// Whoever receives the batch owns the cluster round-trip and must end it
/// with [`complete`](ClosedBatch::complete) or
/// [`fail`](ClosedBatch::fail); dropping the batch fails every ticket.
#[must_use = "every ticket in the batch blocks until the batch is completed or failed"]
pub struct ClosedBatch<V> {
    fingerprints: Vec<Fingerprint>,
    slots: Vec<AnswerSlot<V>>,
    /// Enqueue time of the batch's oldest entry — the sole source for
    /// [`queueing_delay`](ClosedBatch::queueing_delay), so a flush racing
    /// a concurrent submit can never reset it.
    first_submitted_at: Instant,
    closed_at: Instant,
    reason: CloseReason,
}

impl<V> ClosedBatch<V> {
    /// The batch's fingerprints, in arrival order across all sessions.
    pub fn fingerprints(&self) -> &[Fingerprint] {
        &self.fingerprints
    }

    /// Number of fingerprints (never zero — empty batches are not
    /// released).
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Always false; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Why the batch closed.
    pub fn reason(&self) -> CloseReason {
        self.reason
    }

    /// How long the batch's oldest entry waited before release (its own
    /// enqueue time to the close, never a shared `opened_at` that a
    /// concurrent flush could have reset).
    pub fn queueing_delay(&self) -> Duration {
        self.closed_at - self.first_submitted_at
    }

    /// Answers every ticket: `answers[i]` resolves the ticket of
    /// `fingerprints()[i]` — the index-mapped demux of one cluster
    /// round-trip.
    ///
    /// # Errors
    ///
    /// [`Error::Decode`] when `answers` does not cover the batch exactly;
    /// every ticket is then failed with the same error.
    pub fn complete(mut self, answers: Vec<V>) -> Result<()> {
        if answers.len() != self.slots.len() {
            let err = Error::Decode(format!(
                "batch of {} fingerprints answered with {} values",
                self.slots.len(),
                answers.len()
            ));
            for slot in self.slots.drain(..) {
                slot.fill(Err(err.clone()));
            }
            return Err(err);
        }
        for (slot, answer) in self.slots.drain(..).zip(answers) {
            slot.fill(Ok(answer));
        }
        Ok(())
    }

    /// Fails every ticket with (a clone of) `err` — the path taken when
    /// the batch's cluster round-trip fails as a whole.
    pub fn fail(mut self, err: &Error) {
        for slot in self.slots.drain(..) {
            slot.fill(Err(err.clone()));
        }
    }
}

impl<V> std::fmt::Debug for ClosedBatch<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedBatch")
            .field("len", &self.len())
            .field("reason", &self.reason)
            .field("queueing_delay", &self.queueing_delay())
            .finish()
    }
}

/// Result of one [`SharedBatcher::submit`] call.
#[derive(Debug)]
pub struct Submitted<V> {
    /// The completion ticket for the submitted fingerprint.
    pub ticket: Ticket<V>,
    /// The batch this submission closed, when it tripped the size or age
    /// limit. The caller owns its dispatch.
    pub closed: Option<ClosedBatch<V>>,
    /// True when this submission opened a fresh batch (the pending queue
    /// was empty) — the cue for timer-driven owners to re-arm their age
    /// alarm.
    pub opened: bool,
    /// True when admission control shed this submission: the ticket is
    /// already resolved with [`Error::Overloaded`] and nothing was
    /// queued. Callers that can retry should back off first.
    pub shed: bool,
}

/// One queued submission.
struct PendingEntry<V> {
    fingerprint: Fingerprint,
    slot: AnswerSlot<V>,
    submitted_at: Instant,
}

/// Accumulated front-end counters (under the queue lock).
#[derive(Default)]
struct StatsAccum {
    batches: u64,
    fingerprints: u64,
    closed_by_size: u64,
    closed_by_age: u64,
    closed_by_flush: u64,
    max_occupancy: usize,
    delay_count: u64,
    delay_total_ns: u128,
    delay_max_ns: u64,
    /// Ring of the most recent per-fingerprint submit→close delays, so
    /// the windowed tail stays live at any uptime.
    delay_samples: SampleRing,
}

/// Point-in-time snapshot of a [`SharedBatcher`]'s counters.
#[derive(Debug, Clone, Default)]
pub struct SharedBatcherStats {
    /// Batches released so far.
    pub batches: u64,
    /// Fingerprints released in batches so far.
    pub fingerprints: u64,
    /// Batches closed by the size limit.
    pub closed_by_size: u64,
    /// Batches closed by the age limit.
    pub closed_by_age: u64,
    /// Batches closed by an explicit flush.
    pub closed_by_flush: u64,
    /// Largest batch released.
    pub max_occupancy: usize,
    /// Fingerprints currently waiting.
    pub pending: usize,
    /// Per-fingerprint queueing delays recorded (may exceed the sample
    /// vector length once the retention cap is hit).
    pub delay_count: u64,
    /// Sum of all recorded delays, in nanoseconds.
    pub delay_total_ns: u128,
    /// Largest recorded delay, in nanoseconds.
    pub delay_max_ns: u64,
    /// The most recent delay samples in nanoseconds, oldest first
    /// (bounded ring — quantiles describe current behaviour, not the
    /// first hours of uptime).
    pub delay_samples_ns: Vec<u64>,
    /// Submissions admitted past the admission policy.
    pub admitted: u64,
    /// Submissions shed with [`Error::Overloaded`].
    pub shed: u64,
    /// Of the shed submissions, those denied by a per-tenant quota
    /// rather than the global bound.
    pub shed_by_tenant: u64,
    /// Times a submission waited for admission (blocking policy or
    /// ingest pacing).
    pub blocked: u64,
    /// Admitted submissions not yet answered (queued + in flight).
    pub outstanding: usize,
    /// Admitted-latency (admission → answer) observations recorded.
    pub admitted_latency_count: u64,
    /// Sum of recorded admitted latencies, in nanoseconds.
    pub admitted_latency_total_ns: u128,
    /// Largest recorded admitted latency, in nanoseconds.
    pub admitted_latency_max_ns: u64,
    /// The most recent admitted-latency samples in nanoseconds, oldest
    /// first (bounded ring).
    pub admitted_latency_samples_ns: Vec<u64>,
}

impl SharedBatcherStats {
    /// Mean fingerprints per released batch — the cross-client
    /// aggregation payoff.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.fingerprints as f64 / self.batches as f64
        }
    }

    /// Mean per-fingerprint queueing delay.
    pub fn mean_delay(&self) -> Duration {
        if self.delay_count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.delay_total_ns / u128::from(self.delay_count)) as u64)
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded per-fingerprint
    /// queueing delays, or `None` with no samples.
    pub fn delay_quantile(&self, q: f64) -> Option<Duration> {
        if self.delay_samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.delay_samples_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_nanos(sorted[rank]))
    }

    /// The 99th-percentile queueing delay, or `None` with no samples —
    /// the tail the adaptive batch controller steers against.
    pub fn p99(&self) -> Option<Duration> {
        self.delay_quantile(0.99)
    }

    /// The 99.9th-percentile queueing delay, or `None` with no samples.
    pub fn p999(&self) -> Option<Duration> {
        self.delay_quantile(0.999)
    }

    /// Fraction of submissions shed by admission control, `0.0` when
    /// nothing was offered.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.admitted + self.shed;
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }

    /// Mean admitted latency (admission → answer).
    pub fn mean_admitted_latency(&self) -> Duration {
        if self.admitted_latency_count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                (self.admitted_latency_total_ns / u128::from(self.admitted_latency_count)) as u64,
            )
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of recent admitted latencies, or
    /// `None` with no samples.
    pub fn admitted_latency_quantile(&self, q: f64) -> Option<Duration> {
        if self.admitted_latency_samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.admitted_latency_samples_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_nanos(sorted[rank]))
    }

    /// The 99th-percentile admitted latency — the SLO signal the
    /// overload bench reports for requests the system chose to serve.
    pub fn admitted_p99(&self) -> Option<Duration> {
        self.admitted_latency_quantile(0.99)
    }

    /// The 99.9th-percentile admitted latency.
    pub fn admitted_p999(&self) -> Option<Duration> {
        self.admitted_latency_quantile(0.999)
    }

    /// Merges per-front-end snapshots into one tier-wide view: counters
    /// and sample sets sum/concatenate, maxima take the max — the
    /// aggregation a [`FrontendTier`] reports for Figure 4's N
    /// front-ends serving one cluster.
    pub fn merge(snapshots: &[SharedBatcherStats]) -> SharedBatcherStats {
        let mut out = SharedBatcherStats::default();
        for s in snapshots {
            out.batches += s.batches;
            out.fingerprints += s.fingerprints;
            out.closed_by_size += s.closed_by_size;
            out.closed_by_age += s.closed_by_age;
            out.closed_by_flush += s.closed_by_flush;
            out.max_occupancy = out.max_occupancy.max(s.max_occupancy);
            out.pending += s.pending;
            out.delay_count += s.delay_count;
            out.delay_total_ns += s.delay_total_ns;
            out.delay_max_ns = out.delay_max_ns.max(s.delay_max_ns);
            out.delay_samples_ns.extend_from_slice(&s.delay_samples_ns);
            out.admitted += s.admitted;
            out.shed += s.shed;
            out.shed_by_tenant += s.shed_by_tenant;
            out.blocked += s.blocked;
            out.outstanding += s.outstanding;
            out.admitted_latency_count += s.admitted_latency_count;
            out.admitted_latency_total_ns += s.admitted_latency_total_ns;
            out.admitted_latency_max_ns =
                out.admitted_latency_max_ns.max(s.admitted_latency_max_ns);
            out.admitted_latency_samples_ns
                .extend_from_slice(&s.admitted_latency_samples_ns);
        }
        out
    }
}

/// Inner queue state, under one mutex. The batch's age derives from the
/// first pending entry's own enqueue time — there is deliberately no
/// shared `opened_at` a racing flush could reset.
struct State<V> {
    pending: Vec<PendingEntry<V>>,
    stats: StatsAccum,
}

/// Thread-safe cross-client fingerprint aggregator.
///
/// Submissions from any thread append to one shared pending queue and
/// receive a [`Ticket`]; batches close on size (the closing submitter
/// receives the [`ClosedBatch`]), on age (via [`poll`](SharedBatcher::poll),
/// which a timer thread calls), or on [`flush`](SharedBatcher::flush).
/// Arrival order is preserved globally, hence also within each session.
///
/// The size and age limits are atomics so a controller (see
/// [`BatchTuner`](crate::BatchTuner)) can retune a live front-end via
/// [`set_limits`](SharedBatcher::set_limits) without pausing submitters:
/// limits only decide *when* batches close, never what they contain or
/// how tickets resolve, so a mid-stream change is always answer-safe.
///
/// See the [module docs](self) for the full protocol and an example.
pub struct SharedBatcher<V> {
    max_size: AtomicUsize,
    max_age_ns: AtomicU64,
    state: Mutex<State<V>>,
    gate: Arc<AdmissionGate>,
    /// Optional ingest-rate model (token bucket) standing in for the
    /// front-end's client-facing CPU; checked before admission.
    ingest: Option<StdMutex<IngestBucket>>,
}

impl<V> SharedBatcher<V> {
    /// Creates an aggregator with the given size and age limits and the
    /// default admission policy ([`AdmissionPolicy::default`]: blocking
    /// backpressure at a generous bound).
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn new(max_size: usize, max_age: Duration) -> Self {
        Self::with_admission(max_size, max_age, AdmissionPolicy::default(), None)
    }

    /// Creates an aggregator with an explicit [`AdmissionPolicy`] and an
    /// optional [`IngestModel`] bounding the sustained submission rate.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn with_admission(
        max_size: usize,
        max_age: Duration,
        policy: AdmissionPolicy,
        ingest: Option<IngestModel>,
    ) -> Self {
        assert!(max_size > 0, "batch size must be nonzero");
        SharedBatcher {
            max_size: AtomicUsize::new(max_size),
            max_age_ns: AtomicU64::new(Self::age_ns(max_age)),
            state: Mutex::new(State {
                pending: Vec::new(),
                stats: StatsAccum::default(),
            }),
            gate: AdmissionGate::new(policy),
            ingest: ingest.map(|model| StdMutex::new(IngestBucket::new(model))),
        }
    }

    fn age_ns(age: Duration) -> u64 {
        age.as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Replaces both close limits atomically-enough for control use: the
    /// next submit/poll observes the new values. The pending queue is
    /// untouched — if the new size limit is already met, the next
    /// submission closes the batch.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn set_limits(&self, max_size: usize, max_age: Duration) {
        assert!(max_size > 0, "batch size must be nonzero");
        self.max_size.store(max_size, Ordering::Relaxed);
        self.max_age_ns
            .store(Self::age_ns(max_age), Ordering::Relaxed);
    }

    /// Appends a fingerprint to the shared queue, returning its
    /// completion ticket plus the batch this submission closed (size or
    /// age limit), if any. Equivalent to
    /// [`submit_from`](SharedBatcher::submit_from) with no tenant.
    pub fn submit(&self, fingerprint: Fingerprint) -> Submitted<V> {
        self.submit_from(None, fingerprint)
    }

    /// Appends a fingerprint on behalf of `tenant`, passing the
    /// admission policy first. Under a shedding policy past its bound
    /// (or the tenant's quota), nothing is queued: the returned ticket
    /// is already resolved with [`Error::Overloaded`] and
    /// [`Submitted::shed`] is set.
    pub fn submit_from(&self, tenant: Option<u32>, fingerprint: Fingerprint) -> Submitted<V> {
        // 1. Ingest-rate pacing: the front-end's client-facing CPU.
        if let Some(bucket) = &self.ingest {
            loop {
                let taken = bucket
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .try_take(Instant::now());
                match taken {
                    Ok(()) => break,
                    Err(_) if self.gate.policy().sheds() => {
                        self.gate.note_shed();
                        return Self::shed_submission(Error::overloaded(
                            "front-end ingest rate exceeded",
                        ));
                    }
                    Err(wait) => {
                        self.gate.note_blocked();
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        // 2. Occupancy admission: blocks or sheds per the policy.
        let token = match self.gate.admit(tenant) {
            Ok(token) => token,
            Err(err) => return Self::shed_submission(err),
        };
        // 3. The queue proper.
        let now = Instant::now();
        let cell = Cell::new();
        let ticket = Ticket {
            cell: Arc::clone(&cell),
        };
        let mut state = self.state.lock();
        let opened = state.pending.is_empty();
        state.pending.push(PendingEntry {
            fingerprint,
            slot: AnswerSlot {
                cell: Some(cell),
                _token: Some(token),
            },
            submitted_at: now,
        });
        let oldest = state.pending[0].submitted_at;
        let closed = if state.pending.len() >= self.max_size.load(Ordering::Relaxed) {
            Some(Self::close(&mut state, now, CloseReason::Size))
        } else if now.duration_since(oldest) >= self.max_age() {
            Some(Self::close(&mut state, now, CloseReason::Age))
        } else {
            None
        };
        drop(state);
        Submitted {
            ticket,
            closed,
            opened,
            shed: false,
        }
    }

    /// Builds the fail-fast result of a shed submission: a ticket that
    /// is already resolved with `err`, nothing queued.
    fn shed_submission(err: Error) -> Submitted<V> {
        let cell = Cell::new();
        let ticket = Ticket {
            cell: Arc::clone(&cell),
        };
        cell.fill(Err(err));
        Submitted {
            ticket,
            closed: None,
            opened: false,
            shed: true,
        }
    }

    /// Releases the pending batch if its oldest entry has exceeded the
    /// age limit — the hook a background flusher thread drives, so an
    /// idle front-end still answers a lone fingerprint within ≈`max_age`.
    pub fn poll(&self) -> Option<ClosedBatch<V>> {
        let now = Instant::now();
        let mut state = self.state.lock();
        let stale = state
            .pending
            .first()
            .is_some_and(|oldest| now.duration_since(oldest.submitted_at) >= self.max_age());
        if stale {
            Some(Self::close(&mut state, now, CloseReason::Age))
        } else {
            None
        }
    }

    /// Unconditionally releases whatever is pending.
    pub fn flush(&self) -> Option<ClosedBatch<V>> {
        let now = Instant::now();
        let mut state = self.state.lock();
        if state.pending.is_empty() {
            None
        } else {
            Some(Self::close(&mut state, now, CloseReason::Flush))
        }
    }

    /// When the pending batch must be released at the latest (`None` when
    /// the queue is empty) — what a flusher thread sleeps toward.
    pub fn next_deadline(&self) -> Option<Instant> {
        let state = self.state.lock();
        state
            .pending
            .first()
            .map(|oldest| oldest.submitted_at + self.max_age())
    }

    fn close(state: &mut State<V>, now: Instant, reason: CloseReason) -> ClosedBatch<V> {
        let entries = std::mem::take(&mut state.pending);
        let first_submitted_at = entries.first().map(|e| e.submitted_at).unwrap_or(now);
        let mut fingerprints = Vec::with_capacity(entries.len());
        let mut slots = Vec::with_capacity(entries.len());
        let stats = &mut state.stats;
        stats.batches += 1;
        stats.fingerprints += entries.len() as u64;
        stats.max_occupancy = stats.max_occupancy.max(entries.len());
        match reason {
            CloseReason::Size => stats.closed_by_size += 1,
            CloseReason::Age => stats.closed_by_age += 1,
            CloseReason::Flush => stats.closed_by_flush += 1,
        }
        for entry in entries {
            // Each entry's delay is measured from its *own* enqueue time
            // with the one shared close instant, so no sample can be
            // negative or reach across a batch boundary.
            let delay_ns = now
                .duration_since(entry.submitted_at)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            stats.delay_count += 1;
            stats.delay_total_ns += u128::from(delay_ns);
            stats.delay_max_ns = stats.delay_max_ns.max(delay_ns);
            stats.delay_samples.push(delay_ns);
            fingerprints.push(entry.fingerprint);
            slots.push(entry.slot);
        }
        ClosedBatch {
            fingerprints,
            slots,
            first_submitted_at,
            closed_at: now,
            reason,
        }
    }

    /// Fingerprints currently waiting.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// The current maximum batch size.
    pub fn max_size(&self) -> usize {
        self.max_size.load(Ordering::Relaxed)
    }

    /// The current maximum batch age.
    pub fn max_age(&self) -> Duration {
        Duration::from_nanos(self.max_age_ns.load(Ordering::Relaxed))
    }

    /// The batcher's admission policy.
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.gate.policy()
    }

    /// Admitted submissions not yet answered (queued + dispatched) — the
    /// windowed occupancy signal a load balancer compares, cheap enough
    /// to read per submission.
    pub fn outstanding(&self) -> usize {
        self.gate.outstanding()
    }

    /// Snapshots the aggregation counters, delay distribution, and
    /// admission counters.
    pub fn stats(&self) -> SharedBatcherStats {
        let admission = self.gate.snapshot();
        let state = self.state.lock();
        let s = &state.stats;
        SharedBatcherStats {
            batches: s.batches,
            fingerprints: s.fingerprints,
            closed_by_size: s.closed_by_size,
            closed_by_age: s.closed_by_age,
            closed_by_flush: s.closed_by_flush,
            max_occupancy: s.max_occupancy,
            pending: state.pending.len(),
            delay_count: s.delay_count,
            delay_total_ns: s.delay_total_ns,
            delay_max_ns: s.delay_max_ns,
            delay_samples_ns: s.delay_samples.snapshot(),
            admitted: admission.admitted,
            shed: admission.shed,
            shed_by_tenant: admission.shed_by_tenant,
            blocked: admission.blocked,
            outstanding: admission.outstanding,
            admitted_latency_count: admission.latency_count,
            admitted_latency_total_ns: admission.latency_total_ns,
            admitted_latency_max_ns: admission.latency_max_ns,
            admitted_latency_samples_ns: admission.latency_samples_ns,
        }
    }

    /// Shrinks the delay-sample ring so saturation behaviour is testable
    /// without pushing 2^18 samples.
    #[cfg(test)]
    pub(crate) fn set_delay_sample_cap_for_test(&self, cap: usize) {
        self.state.lock().stats.delay_samples = SampleRing::new(cap);
    }
}

impl<V> std::fmt::Debug for SharedBatcher<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBatcher")
            .field("max_size", &self.max_size())
            .field("max_age", &self.max_age())
            .field("pending", &self.pending_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::from_u64(v)
    }

    #[test]
    fn size_trigger_returns_batch_to_closer() {
        let b: SharedBatcher<u64> = SharedBatcher::new(3, Duration::from_secs(60));
        let s1 = b.submit(fp(1));
        assert!(s1.opened && s1.closed.is_none());
        let s2 = b.submit(fp(2));
        assert!(!s2.opened && s2.closed.is_none());
        let s3 = b.submit(fp(3));
        let batch = s3.closed.expect("size limit");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.reason(), CloseReason::Size);
        assert_eq!(batch.fingerprints(), &[fp(1), fp(2), fp(3)]);
        batch.complete(vec![10, 20, 30]).unwrap();
        assert_eq!(s1.ticket.wait().unwrap(), 10);
        assert_eq!(s2.ticket.wait().unwrap(), 20);
        assert_eq!(s3.ticket.wait().unwrap(), 30);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn poll_releases_stale_batch() {
        let b: SharedBatcher<u64> = SharedBatcher::new(100, Duration::from_millis(5));
        let s = b.submit(fp(1));
        assert!(b.poll().is_none(), "not stale yet");
        std::thread::sleep(Duration::from_millis(8));
        let batch = b.poll().expect("stale batch released");
        assert_eq!(batch.reason(), CloseReason::Age);
        assert!(batch.queueing_delay() >= Duration::from_millis(5));
        batch.complete(vec![1]).unwrap();
        assert_eq!(s.ticket.wait().unwrap(), 1);
        assert!(b.poll().is_none(), "nothing pending");
    }

    #[test]
    fn flush_and_deadline() {
        let b: SharedBatcher<u64> = SharedBatcher::new(100, Duration::from_secs(1));
        assert!(b.flush().is_none());
        assert!(b.next_deadline().is_none());
        let s1 = b.submit(fp(1));
        let deadline = b.next_deadline().expect("armed");
        assert!(deadline > Instant::now());
        let batch = b.flush().expect("flush releases");
        assert_eq!(batch.reason(), CloseReason::Flush);
        batch.complete(vec![7]).unwrap();
        assert_eq!(s1.ticket.wait().unwrap(), 7);
    }

    #[test]
    fn dropped_batch_fails_tickets() {
        let b: SharedBatcher<u64> = SharedBatcher::new(1, Duration::from_secs(1));
        let s = b.submit(fp(1));
        drop(s.closed.expect("size-1 batch"));
        let err = s.ticket.wait().unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err}");
    }

    #[test]
    fn fail_propagates_error_to_every_ticket() {
        let b: SharedBatcher<u64> = SharedBatcher::new(2, Duration::from_secs(1));
        let s1 = b.submit(fp(1));
        let s2 = b.submit(fp(2));
        s2.closed
            .expect("size limit")
            .fail(&Error::Unavailable("node down".into()));
        for t in [s1.ticket, s2.ticket] {
            assert!(matches!(t.wait(), Err(Error::Unavailable(_))));
        }
    }

    #[test]
    fn mismatched_answer_count_fails_tickets() {
        let b: SharedBatcher<u64> = SharedBatcher::new(2, Duration::from_secs(1));
        let s1 = b.submit(fp(1));
        let s2 = b.submit(fp(2));
        let err = s2.closed.unwrap().complete(vec![1]).unwrap_err();
        assert!(matches!(err, Error::Decode(_)), "{err}");
        assert!(matches!(s1.ticket.wait(), Err(Error::Decode(_))));
        assert!(matches!(s2.ticket.wait(), Err(Error::Decode(_))));
    }

    #[test]
    fn wait_timeout_gives_up() {
        let b: SharedBatcher<u64> = SharedBatcher::new(100, Duration::from_secs(60));
        let s = b.submit(fp(1));
        assert!(!s.ticket.is_ready());
        let err = s.ticket.wait_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err}");
    }

    #[test]
    fn cross_thread_submissions_aggregate() {
        let b: Arc<SharedBatcher<u64>> = Arc::new(SharedBatcher::new(4, Duration::from_secs(60)));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let s = b.submit(fp(t));
                if let Some(batch) = s.closed {
                    let answers = batch.fingerprints().iter().map(|f| f.route_key()).collect();
                    batch.complete(answers).unwrap();
                }
                s.ticket.wait().unwrap()
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), fp(t as u64).route_key());
        }
        let stats = b.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.fingerprints, 4);
        assert!((stats.mean_occupancy() - 4.0).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// Encodes (session, per-session sequence number) into a
        /// fingerprint so batches can be audited afterwards.
        fn session_fp(session: usize, seq: u64) -> Fingerprint {
            Fingerprint::from_u64(((session as u64) << 32) | seq)
        }

        proptest! {
            /// The cross-client batcher invariants of the Figure-4 flow:
            /// no released batch is empty, every ticket is answered
            /// exactly once with *its own* fingerprint's answer (the
            /// index-mapped demux never cross-wires), and arrival order
            /// is preserved within each session.
            #[test]
            fn batcher_never_loses_or_reorders_tickets(
                max_size in 1usize..9,
                script in proptest::collection::vec(0usize..4, 1..150),
            ) {
                let batcher: SharedBatcher<u64> =
                    SharedBatcher::new(max_size, Duration::from_secs(3600));
                let mut answer_of: HashMap<Fingerprint, u64> = HashMap::new();
                let mut tickets: Vec<Vec<(Fingerprint, Ticket<u64>)>> =
                    (0..4).map(|_| Vec::new()).collect();
                let mut seqs = [0u64; 4];
                let mut batches = Vec::new();

                for &session in &script {
                    let fp = session_fp(session, seqs[session]);
                    seqs[session] += 1;
                    answer_of.insert(fp, fp.route_key());
                    let submitted = batcher.submit(fp);
                    tickets[session].push((fp, submitted.ticket));
                    if let Some(batch) = submitted.closed {
                        prop_assert_eq!(batch.len(), max_size, "only size closes here");
                        batches.push(batch);
                    }
                }
                if let Some(batch) = batcher.flush() {
                    batches.push(batch);
                }
                prop_assert_eq!(batcher.pending_len(), 0);

                // Released batches are never empty, and together they
                // carry every submission in global arrival order.
                let mut released = Vec::new();
                for batch in batches {
                    prop_assert!(!batch.is_empty(), "empty batch released");
                    released.extend_from_slice(batch.fingerprints());
                    let answers = batch
                        .fingerprints()
                        .iter()
                        .map(|f| answer_of[f])
                        .collect::<Vec<_>>();
                    batch.complete(answers).map_err(|e| {
                        TestCaseError::fail(format!("complete failed: {e}"))
                    })?;
                }
                prop_assert_eq!(released.len(), script.len());
                for (session, expected_len) in seqs.iter().enumerate() {
                    let in_session: Vec<Fingerprint> = released
                        .iter()
                        .copied()
                        .filter(|f| f.route_key() >> 32 == session as u64)
                        .collect();
                    let submitted: Vec<Fingerprint> =
                        (0..*expected_len).map(|s| session_fp(session, s)).collect();
                    prop_assert_eq!(in_session, submitted, "session order broken");
                }

                // Every ticket resolves exactly once, to its own answer.
                for session_tickets in tickets {
                    for (fp, ticket) in session_tickets {
                        prop_assert!(ticket.is_ready(), "ticket dropped unanswered");
                        let got = ticket.wait().map_err(|e| {
                            TestCaseError::fail(format!("ticket failed: {e}"))
                        })?;
                        prop_assert_eq!(got, answer_of[&fp], "answer cross-wired");
                    }
                }
            }

            /// Queue-delay stats come solely from each entry's own
            /// enqueue time: whatever mix of submits, polls and flushes
            /// races over the queue, every recorded sample is bounded by
            /// real elapsed time (a "negative" delay would wrap to an
            /// astronomical u64), every batch's oldest-entry sample
            /// equals exactly its reported `queueing_delay`, and no
            /// sample reaches back across a batch boundary.
            #[test]
            fn delay_samples_are_per_entry_and_batch_local(
                max_size in 1usize..6,
                // 0..=2 submit, 3 flush, 4 poll (age limit is zero-ish
                // via set_limits toggling below).
                script in proptest::collection::vec(0u8..5, 1..80),
            ) {
                let batcher: SharedBatcher<u64> =
                    SharedBatcher::new(max_size, Duration::from_secs(3600));
                let started = Instant::now();
                let mut tickets: Vec<Ticket<u64>> = Vec::new();
                let mut seen_samples = 0usize;
                let mut seq = 0u64;
                let audit = |batch: ClosedBatch<u64>,
                                 seen: &mut usize|
                 -> std::result::Result<(), TestCaseError> {
                    let stats = batcher.stats();
                    let fresh = &stats.delay_samples_ns[*seen..];
                    prop_assert_eq!(
                        fresh.len(),
                        batch.len(),
                        "one sample per entry, recorded at close"
                    );
                    let bound = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    let batch_delay_ns =
                        batch.queueing_delay().as_nanos().min(u128::from(u64::MAX)) as u64;
                    for window in fresh.windows(2) {
                        prop_assert!(
                            window[0] >= window[1],
                            "arrival order makes per-batch samples non-increasing"
                        );
                    }
                    for &sample in fresh {
                        prop_assert!(sample <= bound, "no negative/wrapped delay");
                        prop_assert!(
                            sample <= batch_delay_ns,
                            "no sample reaches across the batch boundary"
                        );
                    }
                    prop_assert_eq!(
                        fresh.first().copied(),
                        Some(batch_delay_ns),
                        "oldest entry's sample IS the batch's queueing delay"
                    );
                    *seen = stats.delay_samples_ns.len();
                    let n = batch.len();
                    batch.complete(vec![0; n]).map_err(|e| {
                        TestCaseError::fail(format!("complete failed: {e}"))
                    })?;
                    Ok(())
                };
                for &op in &script {
                    match op {
                        0..=2 => {
                            let s = batcher.submit(Fingerprint::from_u64(seq));
                            seq += 1;
                            tickets.push(s.ticket);
                            if let Some(batch) = s.closed {
                                audit(batch, &mut seen_samples)?;
                            }
                        }
                        3 => {
                            if let Some(batch) = batcher.flush() {
                                audit(batch, &mut seen_samples)?;
                            }
                        }
                        _ => {
                            // A poll against a zero age limit releases
                            // whatever is pending as an age close — the
                            // racy path the per-entry fix covers.
                            batcher.set_limits(max_size, Duration::ZERO);
                            if let Some(batch) = batcher.poll() {
                                audit(batch, &mut seen_samples)?;
                            }
                            batcher.set_limits(max_size, Duration::from_secs(3600));
                        }
                    }
                }
                if let Some(batch) = batcher.flush() {
                    audit(batch, &mut seen_samples)?;
                }
                for ticket in tickets {
                    prop_assert!(ticket.is_ready(), "ticket left unanswered");
                    prop_assert_eq!(ticket.wait().map_err(|e| {
                        TestCaseError::fail(format!("ticket failed: {e}"))
                    })?, 0);
                }
            }
        }
    }

    #[test]
    fn delay_quantile_edge_cases() {
        // Empty window: every quantile (and the p99/p999 shorthands) is None.
        let empty = SharedBatcherStats::default();
        assert_eq!(empty.delay_quantile(0.0), None);
        assert_eq!(empty.delay_quantile(0.99), None);
        assert_eq!(empty.p99(), None);
        assert_eq!(empty.p999(), None);
        // Single sample: every quantile is that sample, including
        // out-of-range q (clamped).
        let one = SharedBatcherStats {
            delay_samples_ns: vec![1234],
            delay_count: 1,
            ..Default::default()
        };
        for q in [-1.0, 0.0, 0.5, 0.99, 0.999, 1.0, 7.0] {
            assert_eq!(one.delay_quantile(q), Some(Duration::from_nanos(1234)));
        }
        assert_eq!(one.p99(), Some(Duration::from_nanos(1234)));
        assert_eq!(one.p999(), Some(Duration::from_nanos(1234)));
        // Known distribution: p99/p999 pick the tail, not the median.
        let many = SharedBatcherStats {
            delay_samples_ns: (1..=1000).collect(),
            delay_count: 1000,
            ..Default::default()
        };
        assert_eq!(many.p99(), Some(Duration::from_nanos(990)));
        assert_eq!(many.p999(), Some(Duration::from_nanos(999)));
        assert_eq!(many.delay_quantile(0.0), Some(Duration::from_nanos(1)));
        assert_eq!(many.delay_quantile(1.0), Some(Duration::from_nanos(1000)));
    }

    #[test]
    fn set_limits_retunes_live() {
        let b: SharedBatcher<u64> = SharedBatcher::new(100, Duration::from_secs(60));
        let s1 = b.submit(fp(1));
        let s2 = b.submit(fp(2));
        assert!(s2.closed.is_none(), "far from the old size limit");
        // Tighten the size limit below the current occupancy: the queue
        // is untouched, the *next* submission closes.
        b.set_limits(2, Duration::from_secs(60));
        assert_eq!(b.max_size(), 2);
        assert_eq!(b.pending_len(), 2);
        let s3 = b.submit(fp(3));
        let batch = s3.closed.expect("new limit applies");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.reason(), CloseReason::Size);
        batch.complete(vec![1, 2, 3]).unwrap();
        assert_eq!(s1.ticket.wait().unwrap(), 1);
        assert_eq!(s2.ticket.wait().unwrap(), 2);
        // Age limit changes show up in poll() and next_deadline().
        let s4 = b.submit(fp(4));
        b.set_limits(100, Duration::ZERO);
        assert_eq!(b.max_age(), Duration::ZERO);
        let batch = b.poll().expect("zero age limit is immediately stale");
        assert_eq!(batch.reason(), CloseReason::Age);
        batch.complete(vec![4]).unwrap();
        assert_eq!(s4.ticket.wait().unwrap(), 4);
    }

    #[test]
    fn shed_submission_resolves_overloaded_immediately() {
        let b: SharedBatcher<u64> = SharedBatcher::with_admission(
            100,
            Duration::from_secs(60),
            AdmissionPolicy::Shed { max_pending: 2 },
            None,
        );
        let s1 = b.submit(fp(1));
        let s2 = b.submit(fp(2));
        assert!(!s1.shed && !s2.shed);
        let s3 = b.submit(fp(3));
        assert!(s3.shed, "third submission past the bound is shed");
        assert!(s3.closed.is_none() && !s3.opened);
        assert!(
            s3.ticket.is_ready(),
            "a shed ticket is resolved at submit time — it can never hang"
        );
        let err = s3.ticket.wait().unwrap_err();
        assert!(err.is_overload(), "{err}");
        assert_eq!(b.pending_len(), 2, "nothing was queued for the shed");
        let stats = b.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed, 1);
        assert!((stats.shed_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn outstanding_spans_dispatch_until_answered() {
        let b: SharedBatcher<u64> = SharedBatcher::with_admission(
            2,
            Duration::from_secs(60),
            AdmissionPolicy::Shed { max_pending: 2 },
            None,
        );
        let s1 = b.submit(fp(1));
        let s2 = b.submit(fp(2));
        let batch = s2.closed.expect("size close");
        // The batch left the queue but is unanswered: still outstanding,
        // so admission keeps shedding — the bound covers in-flight work.
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.outstanding(), 2);
        assert!(b.submit(fp(3)).shed, "in-flight work still holds tokens");
        batch.complete(vec![10, 20]).unwrap();
        assert_eq!(s1.ticket.wait().unwrap(), 10);
        assert_eq!(s2.ticket.wait().unwrap(), 20);
        assert_eq!(b.outstanding(), 0, "answers released the tokens");
        assert!(!b.submit(fp(4)).shed, "capacity reopened");
        let stats = b.stats();
        assert_eq!(stats.admitted_latency_count, 2);
        assert!(stats.admitted_p99().is_some());
        assert!(stats.mean_admitted_latency() > Duration::ZERO);
    }

    #[test]
    fn block_policy_loses_nothing_under_producer_threads() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: u64 = 50;
        // A tight bound (= the batch size) so producers really block on
        // admission; whoever's submission closes a batch answers it
        // inline, which releases the tokens that unblock the others.
        let b: Arc<SharedBatcher<u64>> = Arc::new(SharedBatcher::with_admission(
            2,
            Duration::from_secs(60),
            AdmissionPolicy::Block { max_pending: 2 },
            None,
        ));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..PER_PRODUCER {
                    let s = b.submit(fp((p << 32) | i));
                    assert!(!s.shed, "Block never sheds");
                    if let Some(batch) = s.closed {
                        let answers = batch.fingerprints().iter().map(|f| f.route_key()).collect();
                        batch.complete(answers).unwrap();
                    }
                    tickets.push((fp((p << 32) | i), s.ticket));
                }
                tickets
            }));
        }
        let tickets: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        if let Some(batch) = b.flush() {
            let answers = batch.fingerprints().iter().map(|f| f.route_key()).collect();
            batch.complete(answers).unwrap();
        }
        assert_eq!(tickets.len(), PRODUCERS * PER_PRODUCER as usize);
        for (fingerprint, ticket) in tickets {
            assert_eq!(
                ticket.wait().unwrap(),
                fingerprint.route_key(),
                "every submission answered exactly once, with its own answer"
            );
        }
        let stats = b.stats();
        assert_eq!(stats.admitted, (PRODUCERS as u64) * PER_PRODUCER);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.outstanding, 0);
    }

    #[test]
    fn fair_shed_isolates_tenants_in_the_queue() {
        let b: SharedBatcher<u64> = SharedBatcher::with_admission(
            100,
            Duration::from_secs(60),
            AdmissionPolicy::FairShed {
                max_pending: 100,
                per_tenant_quota: 2,
            },
            None,
        );
        let noisy: Vec<_> = (0..5).map(|i| b.submit_from(Some(1), fp(i))).collect();
        assert_eq!(noisy.iter().filter(|s| s.shed).count(), 3, "quota is 2");
        let quiet = b.submit_from(Some(2), fp(100));
        assert!(!quiet.shed, "the quiet tenant is unaffected");
        let stats = b.stats();
        assert_eq!(stats.shed_by_tenant, 3);
        let batch = b.flush().expect("three admitted entries");
        assert_eq!(batch.len(), 3);
        batch.complete(vec![0, 0, 0]).unwrap();
        for s in noisy {
            let answer = s.ticket.wait();
            if s.shed {
                assert!(answer.unwrap_err().is_overload());
            } else {
                assert_eq!(answer.unwrap(), 0);
            }
        }
        assert_eq!(quiet.ticket.wait().unwrap(), 0);
    }

    #[test]
    fn ingest_model_sheds_or_paces_by_policy() {
        // Shedding policy + exhausted bucket: fail fast.
        let b: SharedBatcher<u64> = SharedBatcher::with_admission(
            100,
            Duration::from_secs(60),
            AdmissionPolicy::Shed { max_pending: 1000 },
            Some(IngestModel {
                rate_per_sec: 0.001,
                burst: 2.0,
            }),
        );
        assert!(!b.submit(fp(1)).shed);
        assert!(!b.submit(fp(2)).shed);
        let s = b.submit(fp(3));
        assert!(s.shed, "bucket drained at ~zero refill rate");
        assert!(s.ticket.wait().unwrap_err().is_overload());
        // Blocking policy + fast bucket: pacing, not loss.
        let b: SharedBatcher<u64> = SharedBatcher::with_admission(
            100,
            Duration::from_secs(60),
            AdmissionPolicy::Block { max_pending: 1000 },
            Some(IngestModel {
                rate_per_sec: 2000.0,
                burst: 1.0,
            }),
        );
        let start = Instant::now();
        for i in 0..5 {
            assert!(!b.submit(fp(i)).shed);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(2),
            "submissions were paced to the ingest rate"
        );
        let batch = b.flush().unwrap();
        let n = batch.len();
        batch.complete(vec![0; n]).unwrap();
    }

    #[test]
    fn merged_stats_sum_across_front_ends() {
        let mk = |n: u64| {
            let b: SharedBatcher<u64> = SharedBatcher::new(100, Duration::from_secs(60));
            let tickets: Vec<_> = (0..n).map(|i| b.submit(fp(i)).ticket).collect();
            let batch = b.flush().unwrap();
            let len = batch.len();
            batch.complete(vec![0; len]).unwrap();
            for t in tickets {
                let _ = t.wait();
            }
            b.stats()
        };
        let (a, b) = (mk(3), mk(5));
        let merged = SharedBatcherStats::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.fingerprints, 8);
        assert_eq!(merged.batches, 2);
        assert_eq!(merged.admitted, 8);
        assert_eq!(merged.delay_samples_ns.len(), 8);
        assert_eq!(merged.admitted_latency_count, 8);
        assert_eq!(merged.max_occupancy, a.max_occupancy.max(b.max_occupancy));
        assert_eq!(merged.delay_max_ns, a.delay_max_ns.max(b.delay_max_ns));
    }

    #[test]
    fn stats_track_close_reasons_and_delays() {
        let b: SharedBatcher<u64> = SharedBatcher::new(2, Duration::from_millis(1));
        let s1 = b.submit(fp(1));
        let s2 = b.submit(fp(2));
        s2.closed.unwrap().complete(vec![0, 0]).unwrap();
        let s3 = b.submit(fp(3));
        std::thread::sleep(Duration::from_millis(3));
        b.poll().unwrap().complete(vec![0]).unwrap();
        let _ = (s1.ticket.wait(), s3.ticket.wait());
        let stats = b.stats();
        assert_eq!(stats.closed_by_size, 1);
        assert_eq!(stats.closed_by_age, 1);
        assert_eq!(stats.delay_count, 3);
        assert!(stats.delay_quantile(1.0).unwrap() >= Duration::from_millis(1));
        assert!(stats.mean_delay() > Duration::ZERO);
        assert_eq!(stats.max_occupancy, 2);
    }
}
