//! Length-prefixed, versioned wire format.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use shhc_types::{Admission, Error, Fingerprint, KeyRange, Result, StreamId, FINGERPRINT_LEN};

/// Wire protocol version byte; bump on incompatible layout changes.
pub const WIRE_VERSION: u8 = 1;

const TAG_LOOKUP_INSERT_REQ: u8 = 1;
const TAG_QUERY_REQ: u8 = 2;
const TAG_LOOKUP_RESP: u8 = 3;
const TAG_PING: u8 = 4;
const TAG_PONG: u8 = 5;
const TAG_RECORD_REQ: u8 = 6;
const TAG_ACK: u8 = 7;
const TAG_ERROR: u8 = 8;
const TAG_REMOVE_REQ: u8 = 9;
const TAG_SCAN_RANGE_REQ: u8 = 10;
const TAG_SCAN_RANGE_RESP: u8 = 11;
const TAG_MIGRATE_REQ: u8 = 12;

/// A protocol message exchanged between front-ends and hash nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// The paper's operation: look up a batch of fingerprints, inserting
    /// any that are absent (Fig. 4 flow). The response reports, per
    /// fingerprint, whether the chunk already existed.
    LookupInsertReq {
        /// Request/response correlation id.
        correlation: u64,
        /// The backup stream the batch belongs to.
        stream: StreamId,
        /// The batched fingerprints, in stream order.
        fingerprints: Vec<Fingerprint>,
    },
    /// Read-only existence query (no insertion on miss).
    QueryReq {
        /// Request/response correlation id.
        correlation: u64,
        /// How the answering node may cache what this query reads:
        /// [`Admission::Bypass`] marks one-pass scans (restore) whose
        /// results must not displace the ingest working set.
        admission: Admission,
        /// The batched fingerprints.
        fingerprints: Vec<Fingerprint>,
    },
    /// Response to either request type.
    LookupResp {
        /// Correlation id copied from the request.
        correlation: u64,
        /// Per-fingerprint existence, parallel to the request order.
        exists: Vec<bool>,
        /// For each *existing* fingerprint (in order), the value stored
        /// with it (e.g. a packed chunk location); new fingerprints carry
        /// no value.
        values: Vec<u64>,
    },
    /// Associates values (e.g. chunk locations assigned by the storage
    /// backend) with fingerprints previously inserted as new.
    RecordReq {
        /// Request/response correlation id.
        correlation: u64,
        /// `(fingerprint, value)` pairs to record.
        pairs: Vec<(Fingerprint, u64)>,
    },
    /// Generic acknowledgement.
    Ack {
        /// Correlation id copied from the request.
        correlation: u64,
    },
    /// Liveness probe.
    Ping {
        /// Request/response correlation id.
        correlation: u64,
    },
    /// Liveness reply.
    Pong {
        /// Correlation id copied from the ping.
        correlation: u64,
    },
    /// Removes fingerprints whose chunks were garbage-collected (backup
    /// deletion path). Answered with [`Frame::Ack`].
    RemoveReq {
        /// Request/response correlation id.
        correlation: u64,
        /// Fingerprints to remove.
        fingerprints: Vec<Fingerprint>,
    },
    /// One page of a chunked scan over a node's entries whose routing
    /// keys fall inside `range` — the read half of online migration.
    /// Answered with [`Frame::ScanRangeResp`].
    ScanRangeReq {
        /// Request/response correlation id.
        correlation: u64,
        /// Routing-key range to scan (inclusive, possibly wrapping).
        range: KeyRange,
        /// Resume cursor: return only fingerprints strictly greater than
        /// this one (`None` starts from the beginning of the range).
        after: Option<Fingerprint>,
        /// Maximum entries to return in this page.
        limit: u32,
    },
    /// One page of scan results, in ascending fingerprint order.
    ScanRangeResp {
        /// Correlation id copied from the request.
        correlation: u64,
        /// The page's `(fingerprint, value)` entries.
        pairs: Vec<(Fingerprint, u64)>,
        /// Whether the range is exhausted (no entries beyond this page).
        done: bool,
    },
    /// Installs migrated entries on their new owner: each fingerprint is
    /// inserted with its carried value **if absent**; entries the node
    /// already holds keep their (fresher) local value. Answered with
    /// [`Frame::Ack`].
    MigrateReq {
        /// Request/response correlation id.
        correlation: u64,
        /// `(fingerprint, value)` entries to install.
        pairs: Vec<(Fingerprint, u64)>,
    },
    /// Server-side failure while handling the correlated request.
    Error {
        /// Correlation id copied from the request.
        correlation: u64,
        /// Human-readable failure description.
        message: String,
    },
}

impl Frame {
    /// The correlation id carried by any frame.
    pub fn correlation(&self) -> u64 {
        match self {
            Frame::LookupInsertReq { correlation, .. }
            | Frame::QueryReq { correlation, .. }
            | Frame::LookupResp { correlation, .. }
            | Frame::RecordReq { correlation, .. }
            | Frame::RemoveReq { correlation, .. }
            | Frame::ScanRangeReq { correlation, .. }
            | Frame::ScanRangeResp { correlation, .. }
            | Frame::MigrateReq { correlation, .. }
            | Frame::Ack { correlation }
            | Frame::Ping { correlation }
            | Frame::Pong { correlation }
            | Frame::Error { correlation, .. } => *correlation,
        }
    }
}

/// Serializes a frame: `[u32 len][u8 version][u8 tag][u64 correlation]…`.
///
/// The length prefix counts everything after itself.
pub fn encode(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(frame));
    encode_into(frame, &mut buf);
    buf.freeze()
}

/// Serializes a frame through a caller-retained scratch buffer,
/// returning an owned [`Bytes`]: the frame is encoded with
/// [`encode_into`] (reusing `scratch`'s allocation across calls) and the
/// result copied once into refcounted storage. Node server loops answer
/// thousands of frames from one thread; this keeps each reply to a
/// single right-sized allocation instead of growing a fresh buffer from
/// zero per frame as [`encode`] does.
pub fn encode_reusing(frame: &Frame, scratch: &mut BytesMut) -> Bytes {
    encode_into(frame, scratch);
    Bytes::copy_from_slice(scratch)
}

/// Serializes a frame into `buf`, clearing it first and reusing its
/// allocation — for callers that keep a scratch buffer across frames
/// (codec benches, byte-oriented transports). The in-process cluster
/// transport carries refcounted [`Bytes`], so its hot path instead
/// encodes once per replica group and shares the buffer via
/// `Bytes::clone`.
pub fn encode_into(frame: &Frame, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len(frame));
    buf.put_u32_le(0); // patched below
    buf.put_u8(WIRE_VERSION);
    match frame {
        Frame::LookupInsertReq {
            correlation,
            stream,
            fingerprints,
        } => {
            buf.put_u8(TAG_LOOKUP_INSERT_REQ);
            buf.put_u64_le(*correlation);
            buf.put_u32_le(stream.raw());
            buf.put_u32_le(fingerprints.len() as u32);
            for fp in fingerprints {
                buf.put_slice(fp.as_bytes());
            }
        }
        Frame::QueryReq {
            correlation,
            admission,
            fingerprints,
        } => {
            buf.put_u8(TAG_QUERY_REQ);
            buf.put_u64_le(*correlation);
            buf.put_u8(admission.to_wire());
            buf.put_u32_le(fingerprints.len() as u32);
            for fp in fingerprints {
                buf.put_slice(fp.as_bytes());
            }
        }
        Frame::LookupResp {
            correlation,
            exists,
            values,
        } => {
            buf.put_u8(TAG_LOOKUP_RESP);
            buf.put_u64_le(*correlation);
            buf.put_u32_le(exists.len() as u32);
            // Bit-packed existence vector.
            let mut byte = 0u8;
            for (i, &e) in exists.iter().enumerate() {
                if e {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if exists.len() % 8 != 0 {
                buf.put_u8(byte);
            }
            // One value per set bit, in order.
            debug_assert_eq!(
                values.len(),
                exists.iter().filter(|e| **e).count(),
                "one value per existing fingerprint"
            );
            for v in values {
                buf.put_u64_le(*v);
            }
        }
        Frame::RecordReq { correlation, pairs } => {
            buf.put_u8(TAG_RECORD_REQ);
            buf.put_u64_le(*correlation);
            buf.put_u32_le(pairs.len() as u32);
            for (fp, v) in pairs {
                buf.put_slice(fp.as_bytes());
                buf.put_u64_le(*v);
            }
        }
        Frame::Ack { correlation } => {
            buf.put_u8(TAG_ACK);
            buf.put_u64_le(*correlation);
        }
        Frame::Ping { correlation } => {
            buf.put_u8(TAG_PING);
            buf.put_u64_le(*correlation);
        }
        Frame::Pong { correlation } => {
            buf.put_u8(TAG_PONG);
            buf.put_u64_le(*correlation);
        }
        Frame::RemoveReq {
            correlation,
            fingerprints,
        } => {
            buf.put_u8(TAG_REMOVE_REQ);
            buf.put_u64_le(*correlation);
            buf.put_u32_le(fingerprints.len() as u32);
            for fp in fingerprints {
                buf.put_slice(fp.as_bytes());
            }
        }
        Frame::ScanRangeReq {
            correlation,
            range,
            after,
            limit,
        } => {
            buf.put_u8(TAG_SCAN_RANGE_REQ);
            buf.put_u64_le(*correlation);
            buf.put_u64_le(range.first);
            buf.put_u64_le(range.last);
            match after {
                Some(fp) => {
                    buf.put_u8(1);
                    buf.put_slice(fp.as_bytes());
                }
                None => buf.put_u8(0),
            }
            buf.put_u32_le(*limit);
        }
        Frame::ScanRangeResp {
            correlation,
            pairs,
            done,
        } => {
            buf.put_u8(TAG_SCAN_RANGE_RESP);
            buf.put_u64_le(*correlation);
            buf.put_u8(u8::from(*done));
            buf.put_u32_le(pairs.len() as u32);
            for (fp, v) in pairs {
                buf.put_slice(fp.as_bytes());
                buf.put_u64_le(*v);
            }
        }
        Frame::MigrateReq { correlation, pairs } => {
            buf.put_u8(TAG_MIGRATE_REQ);
            buf.put_u64_le(*correlation);
            buf.put_u32_le(pairs.len() as u32);
            for (fp, v) in pairs {
                buf.put_slice(fp.as_bytes());
                buf.put_u64_le(*v);
            }
        }
        Frame::Error {
            correlation,
            message,
        } => {
            buf.put_u8(TAG_ERROR);
            buf.put_u64_le(*correlation);
            let bytes = message.as_bytes();
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
    }
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
}

/// Exact encoded size of a frame in bytes (including the length prefix) —
/// used by the virtual network model to charge bandwidth without encoding.
pub fn encoded_len(frame: &Frame) -> usize {
    4 + 1
        + match frame {
            Frame::LookupInsertReq { fingerprints, .. } => {
                1 + 8 + 4 + 4 + fingerprints.len() * FINGERPRINT_LEN
            }
            Frame::QueryReq { fingerprints, .. } => {
                1 + 8 + 1 + 4 + fingerprints.len() * FINGERPRINT_LEN
            }
            Frame::LookupResp { exists, values, .. } => {
                1 + 8 + 4 + exists.len().div_ceil(8) + values.len() * 8
            }
            Frame::RecordReq { pairs, .. } => 1 + 8 + 4 + pairs.len() * (FINGERPRINT_LEN + 8),
            Frame::RemoveReq { fingerprints, .. } => {
                1 + 8 + 4 + fingerprints.len() * FINGERPRINT_LEN
            }
            Frame::ScanRangeReq { after, .. } => {
                1 + 8 + 16 + 1 + if after.is_some() { FINGERPRINT_LEN } else { 0 } + 4
            }
            Frame::ScanRangeResp { pairs, .. } => {
                1 + 8 + 1 + 4 + pairs.len() * (FINGERPRINT_LEN + 8)
            }
            Frame::MigrateReq { pairs, .. } => 1 + 8 + 4 + pairs.len() * (FINGERPRINT_LEN + 8),
            Frame::Ack { .. } | Frame::Ping { .. } | Frame::Pong { .. } => 1 + 8,
            Frame::Error { message, .. } => 1 + 8 + 4 + message.len(),
        }
}

/// Encoded size of a [`Frame::LookupInsertReq`] carrying `n` fingerprints,
/// without building the frame (hot-path helper for the virtual network
/// model).
pub fn lookup_req_len(n: usize) -> usize {
    4 + 1 + 1 + 8 + 4 + 4 + n * FINGERPRINT_LEN
}

/// Encoded size of a [`Frame::LookupResp`] with `n` results of which
/// `hits` carry values.
pub fn lookup_resp_len(n: usize, hits: usize) -> usize {
    4 + 1 + 1 + 8 + 4 + n.div_ceil(8) + hits * 8
}

/// Decodes one frame from `bytes` (which must contain exactly one frame).
///
/// # Errors
///
/// [`Error::Decode`] on truncation, version mismatch, unknown tag, or a
/// length prefix that disagrees with the payload.
pub fn decode(bytes: &[u8]) -> Result<Frame> {
    let mut buf = bytes;
    if buf.remaining() < 6 {
        return Err(Error::Decode("frame shorter than header".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() != len {
        return Err(Error::Decode(format!(
            "length prefix {len} but {} bytes follow",
            buf.remaining()
        )));
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(Error::Decode(format!(
            "unsupported wire version {version} (expected {WIRE_VERSION})"
        )));
    }
    let tag = buf.get_u8();
    let need = |buf: &&[u8], n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(Error::Decode(format!(
                "truncated frame: need {n} more bytes, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&buf, 8)?;
    let correlation = buf.get_u64_le();

    match tag {
        TAG_LOOKUP_INSERT_REQ => {
            need(&buf, 8)?;
            let stream = StreamId::new(buf.get_u32_le());
            let n = buf.get_u32_le() as usize;
            need(&buf, n * FINGERPRINT_LEN)?;
            let fingerprints = read_fps(&mut buf, n);
            Ok(Frame::LookupInsertReq {
                correlation,
                stream,
                fingerprints,
            })
        }
        TAG_QUERY_REQ => {
            need(&buf, 1 + 4)?;
            let admission = Admission::from_wire(buf.get_u8())?;
            let n = buf.get_u32_le() as usize;
            need(&buf, n * FINGERPRINT_LEN)?;
            let fingerprints = read_fps(&mut buf, n);
            Ok(Frame::QueryReq {
                correlation,
                admission,
                fingerprints,
            })
        }
        TAG_LOOKUP_RESP => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let packed = n.div_ceil(8);
            need(&buf, packed)?;
            let mut exists = Vec::with_capacity(n);
            let mut byte = 0u8;
            for i in 0..n {
                if i % 8 == 0 {
                    byte = buf.get_u8();
                }
                exists.push(byte & (1 << (i % 8)) != 0);
            }
            let hits = exists.iter().filter(|e| **e).count();
            need(&buf, hits * 8)?;
            let mut values = Vec::with_capacity(hits);
            for _ in 0..hits {
                values.push(buf.get_u64_le());
            }
            Ok(Frame::LookupResp {
                correlation,
                exists,
                values,
            })
        }
        TAG_RECORD_REQ => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(&buf, n * (FINGERPRINT_LEN + 8))?;
            let pairs = read_pairs(&mut buf, n);
            Ok(Frame::RecordReq { correlation, pairs })
        }
        TAG_ACK => Ok(Frame::Ack { correlation }),
        TAG_PING => Ok(Frame::Ping { correlation }),
        TAG_PONG => Ok(Frame::Pong { correlation }),
        TAG_REMOVE_REQ => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(&buf, n * FINGERPRINT_LEN)?;
            let fingerprints = read_fps(&mut buf, n);
            Ok(Frame::RemoveReq {
                correlation,
                fingerprints,
            })
        }
        TAG_SCAN_RANGE_REQ => {
            need(&buf, 16 + 1)?;
            let first = buf.get_u64_le();
            let last = buf.get_u64_le();
            let after = match buf.get_u8() {
                0 => None,
                1 => {
                    need(&buf, FINGERPRINT_LEN)?;
                    let mut fp = [0u8; FINGERPRINT_LEN];
                    buf.copy_to_slice(&mut fp);
                    Some(Fingerprint::from_bytes(fp))
                }
                other => {
                    return Err(Error::Decode(format!("bad scan cursor flag {other}")));
                }
            };
            need(&buf, 4)?;
            let limit = buf.get_u32_le();
            Ok(Frame::ScanRangeReq {
                correlation,
                range: KeyRange::new(first, last),
                after,
                limit,
            })
        }
        TAG_SCAN_RANGE_RESP => {
            need(&buf, 1 + 4)?;
            let done = match buf.get_u8() {
                0 => false,
                1 => true,
                other => return Err(Error::Decode(format!("bad scan done flag {other}"))),
            };
            let n = buf.get_u32_le() as usize;
            need(&buf, n * (FINGERPRINT_LEN + 8))?;
            let pairs = read_pairs(&mut buf, n);
            Ok(Frame::ScanRangeResp {
                correlation,
                pairs,
                done,
            })
        }
        TAG_MIGRATE_REQ => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(&buf, n * (FINGERPRINT_LEN + 8))?;
            let pairs = read_pairs(&mut buf, n);
            Ok(Frame::MigrateReq { correlation, pairs })
        }
        TAG_ERROR => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(&buf, n)?;
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            let message = String::from_utf8(bytes)
                .map_err(|_| Error::Decode("error message is not UTF-8".into()))?;
            Ok(Frame::Error {
                correlation,
                message,
            })
        }
        other => Err(Error::Decode(format!("unknown frame tag {other}"))),
    }
}

/// Reads `n` `(fingerprint, value)` pairs; the caller has verified the
/// buffer holds them.
fn read_pairs(buf: &mut &[u8], n: usize) -> Vec<(Fingerprint, u64)> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut fp = [0u8; FINGERPRINT_LEN];
        buf.copy_to_slice(&mut fp);
        let v = buf.get_u64_le();
        out.push((Fingerprint::from_bytes(fp), v));
    }
    out
}

fn read_fps(buf: &mut &[u8], n: usize) -> Vec<Fingerprint> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut fp = [0u8; FINGERPRINT_LEN];
        buf.copy_to_slice(&mut fp);
        out.push(Fingerprint::from_bytes(fp));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::LookupInsertReq {
                correlation: 1,
                stream: StreamId::new(9),
                fingerprints: (0..5).map(Fingerprint::from_u64).collect(),
            },
            Frame::QueryReq {
                correlation: 2,
                admission: Admission::Normal,
                fingerprints: vec![],
            },
            Frame::QueryReq {
                correlation: 15,
                admission: Admission::Bypass,
                fingerprints: (20..24).map(Fingerprint::from_u64).collect(),
            },
            Frame::LookupResp {
                correlation: 3,
                exists: vec![true, false, true, true, false, false, true, false, true],
                values: vec![10, 20, 30, 40, 50],
            },
            Frame::RecordReq {
                correlation: 6,
                pairs: vec![
                    (Fingerprint::from_u64(1), 11),
                    (Fingerprint::from_u64(2), 22),
                ],
            },
            Frame::Ack { correlation: 7 },
            Frame::Ping { correlation: 4 },
            Frame::Pong { correlation: 5 },
            Frame::Error {
                correlation: 8,
                message: "out of space in flash device".into(),
            },
            Frame::RemoveReq {
                correlation: 9,
                fingerprints: (5..9).map(Fingerprint::from_u64).collect(),
            },
            Frame::ScanRangeReq {
                correlation: 10,
                range: KeyRange::new(100, 50), // wrapping
                after: None,
                limit: 256,
            },
            Frame::ScanRangeReq {
                correlation: 11,
                range: KeyRange::full(),
                after: Some(Fingerprint::from_u64(77)),
                limit: 1,
            },
            Frame::ScanRangeResp {
                correlation: 12,
                pairs: vec![
                    (Fingerprint::from_u64(3), 33),
                    (Fingerprint::from_u64(4), 44),
                ],
                done: false,
            },
            Frame::ScanRangeResp {
                correlation: 13,
                pairs: vec![],
                done: true,
            },
            Frame::MigrateReq {
                correlation: 14,
                pairs: vec![(Fingerprint::from_u64(9), 99)],
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            assert_eq!(decode(&bytes).expect("decode"), frame);
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        for frame in sample_frames() {
            assert_eq!(encode(&frame).len(), encoded_len(&frame), "{frame:?}");
        }
    }

    #[test]
    fn encode_into_reuses_one_buffer_across_frames() {
        let mut buf = BytesMut::new();
        for frame in sample_frames() {
            encode_into(&frame, &mut buf);
            assert_eq!(&buf[..], &encode(&frame)[..], "{frame:?}");
            assert_eq!(decode(&buf).expect("decode"), frame);
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample_frames()[0]);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_version_detected() {
        let mut bytes = encode(&Frame::Ping { correlation: 1 }).to_vec();
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, Error::Decode(ref m) if m.contains("version")));
    }

    #[test]
    fn bad_tag_detected() {
        let mut bytes = encode(&Frame::Ping { correlation: 1 }).to_vec();
        bytes[5] = 200;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, Error::Decode(ref m) if m.contains("tag")));
    }

    #[test]
    fn bad_scan_cursor_flag_detected() {
        let mut bytes = encode(&Frame::ScanRangeReq {
            correlation: 1,
            range: KeyRange::new(0, 10),
            after: None,
            limit: 8,
        })
        .to_vec();
        // The cursor flag sits after len(4) + version + tag + correlation(8)
        // + range(16).
        bytes[4 + 1 + 1 + 8 + 16] = 9;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, Error::Decode(ref m) if m.contains("cursor")));
    }

    #[test]
    fn correlation_accessor() {
        for frame in sample_frames() {
            assert!(frame.correlation() >= 1);
        }
    }

    proptest! {
        #[test]
        fn prop_lookup_round_trip(correlation: u64, stream: u32,
                                  fps in proptest::collection::vec(any::<u64>(), 0..200)) {
            let frame = Frame::LookupInsertReq {
                correlation,
                stream: StreamId::new(stream),
                fingerprints: fps.iter().map(|v| Fingerprint::from_u64(*v)).collect(),
            };
            let bytes = encode(&frame);
            prop_assert_eq!(bytes.len(), encoded_len(&frame));
            prop_assert_eq!(decode(&bytes).unwrap(), frame);
        }

        #[test]
        fn prop_resp_round_trip(correlation: u64,
                                exists in proptest::collection::vec(any::<bool>(), 0..500)) {
            let hits = exists.iter().filter(|e| **e).count();
            let values: Vec<u64> = (0..hits as u64).collect();
            let frame = Frame::LookupResp { correlation, exists, values };
            prop_assert_eq!(decode(&encode(&frame)).unwrap(), frame);
        }
    }
}
