//! Front-end fingerprint batching.

use shhc_types::{Fingerprint, Nanos};

/// A batch of fingerprints released by a [`Batcher`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The fingerprints, in arrival order.
    pub fingerprints: Vec<Fingerprint>,
    /// Virtual time the first fingerprint entered the batch.
    pub opened_at: Nanos,
    /// Virtual time the batch was released.
    pub closed_at: Nanos,
}

impl Batch {
    /// Number of fingerprints in the batch.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// True if the batch carries nothing (never produced by a `Batcher`).
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// How long the first fingerprint waited for the batch to close —
    /// the batching latency the paper's future-work section worries
    /// about.
    pub fn queueing_delay(&self) -> Nanos {
        self.closed_at - self.opened_at
    }
}

/// Aggregates fingerprints into batches of at most `max_size`, releasing
/// early when the oldest entry has waited `max_age`.
///
/// "the web front-end aggregates fingerprints from clients and sends them
/// as a batch to hybrid nodes" — SHHC §III.A. The size/age pair is the
/// throughput-versus-latency dial explored in the batch-tradeoff bench.
///
/// # Examples
///
/// ```
/// use shhc_net::Batcher;
/// use shhc_types::{Fingerprint, Nanos};
///
/// let mut batcher = Batcher::new(3, Nanos::from_millis(10));
/// assert!(batcher.push(Fingerprint::from_u64(1), Nanos::ZERO).is_none());
/// assert!(batcher.push(Fingerprint::from_u64(2), Nanos::ZERO).is_none());
/// let batch = batcher.push(Fingerprint::from_u64(3), Nanos::ZERO).unwrap();
/// assert_eq!(batch.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    max_size: usize,
    max_age: Nanos,
    pending: Vec<Fingerprint>,
    opened_at: Nanos,
}

impl Batcher {
    /// Creates a batcher with the given size and age limits.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn new(max_size: usize, max_age: Nanos) -> Self {
        assert!(max_size > 0, "batch size must be nonzero");
        Batcher {
            max_size,
            max_age,
            pending: Vec::new(),
            opened_at: Nanos::ZERO,
        }
    }

    /// Adds a fingerprint at virtual time `now`; returns a full batch when
    /// the size limit is reached or the age limit has expired.
    pub fn push(&mut self, fp: Fingerprint, now: Nanos) -> Option<Batch> {
        if self.pending.is_empty() {
            self.opened_at = now;
        }
        self.pending.push(fp);
        if self.pending.len() >= self.max_size || now - self.opened_at >= self.max_age {
            self.close(now)
        } else {
            None
        }
    }

    /// Releases the pending batch if the oldest entry has exceeded the
    /// age limit by `now` (for timer-driven flushing).
    pub fn poll(&mut self, now: Nanos) -> Option<Batch> {
        if !self.pending.is_empty() && now - self.opened_at >= self.max_age {
            self.close(now)
        } else {
            None
        }
    }

    /// Unconditionally releases whatever is pending.
    pub fn flush(&mut self, now: Nanos) -> Option<Batch> {
        if self.pending.is_empty() {
            None
        } else {
            self.close(now)
        }
    }

    fn close(&mut self, now: Nanos) -> Option<Batch> {
        let fingerprints = std::mem::take(&mut self.pending);
        Some(Batch {
            fingerprints,
            opened_at: self.opened_at,
            closed_at: now,
        })
    }

    /// Number of fingerprints currently waiting.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The configured maximum batch size.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// The configured maximum batch age.
    pub fn max_age(&self) -> Nanos {
        self.max_age
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::from_u64(v)
    }

    #[test]
    fn size_trigger() {
        let mut b = Batcher::new(2, Nanos::from_secs(1));
        assert!(b.push(fp(1), Nanos::ZERO).is_none());
        let batch = b.push(fp(2), Nanos::from_micros(5)).expect("size limit");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.queueing_delay(), Nanos::from_micros(5));
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn age_trigger_on_push() {
        let mut b = Batcher::new(100, Nanos::from_micros(10));
        assert!(b.push(fp(1), Nanos::ZERO).is_none());
        let batch = b.push(fp(2), Nanos::from_micros(10)).expect("age limit");
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn poll_releases_stale_batch() {
        let mut b = Batcher::new(100, Nanos::from_micros(10));
        b.push(fp(1), Nanos::ZERO);
        assert!(b.poll(Nanos::from_micros(5)).is_none());
        let batch = b.poll(Nanos::from_micros(11)).expect("stale");
        assert_eq!(batch.len(), 1);
        assert!(b.poll(Nanos::from_micros(20)).is_none(), "nothing pending");
    }

    #[test]
    fn flush_empties_pending() {
        let mut b = Batcher::new(100, Nanos::from_secs(1));
        assert!(b.flush(Nanos::ZERO).is_none());
        b.push(fp(1), Nanos::ZERO);
        b.push(fp(2), Nanos::ZERO);
        let batch = b.flush(Nanos::from_micros(1)).expect("flush");
        assert_eq!(batch.len(), 2);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn batch_of_one_when_size_is_one() {
        let mut b = Batcher::new(1, Nanos::from_secs(1));
        let batch = b.push(fp(7), Nanos::ZERO).expect("immediate");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.queueing_delay(), Nanos::ZERO);
    }

    #[test]
    fn preserves_arrival_order() {
        let mut b = Batcher::new(4, Nanos::from_secs(1));
        b.push(fp(1), Nanos::ZERO);
        b.push(fp(2), Nanos::ZERO);
        b.push(fp(3), Nanos::ZERO);
        let batch = b.push(fp(4), Nanos::ZERO).unwrap();
        assert_eq!(batch.fingerprints, vec![fp(1), fp(2), fp(3), fp(4)]);
    }
}
