//! The link cost model.

use shhc_types::Nanos;

/// Cost model for one network link (NIC + switch path).
///
/// A message of `b` bytes costs `per_message + b / bandwidth` of link
/// time; a request/response exchange additionally pays `rtt` of
/// propagation. These three parameters are exactly what makes batch mode
/// win in the paper's Figure 5: the per-message overhead is amortized
/// across the batch.
///
/// # Examples
///
/// ```
/// use shhc_net::NetModel;
/// use shhc_types::Nanos;
///
/// let net = NetModel::gigabit();
/// let small = net.transfer_time(64);
/// let large = net.transfer_time(64 * 1024);
/// assert!(large > small);
/// assert!(small >= net.per_message);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    /// Fixed cost per message (syscall, NIC doorbell, interrupt,
    /// protocol stack) regardless of size.
    pub per_message: Nanos,
    /// Round-trip propagation+switching time between two hosts.
    pub rtt: Nanos,
    /// Link bandwidth in bytes per second.
    pub bandwidth: u64,
}

impl NetModel {
    /// 1 GbE through the paper's request path (client → HTTP front-end →
    /// hash node): 150 µs per-message software overhead (kernel stack +
    /// request handling on both sides), 250 µs RTT, 125 MB/s link.
    ///
    /// The per-message constant is calibrated so an *unbatched* lookup
    /// costs what the paper's testbed measured (its batch=1 series);
    /// the batched results are then emergent, not fitted.
    pub fn gigabit() -> Self {
        NetModel {
            per_message: Nanos::from_micros(150),
            rtt: Nanos::from_micros(250),
            bandwidth: 125_000_000,
        }
    }

    /// A free network for pure-correctness tests.
    pub fn instant() -> Self {
        NetModel {
            per_message: Nanos::ZERO,
            rtt: Nanos::ZERO,
            bandwidth: u64::MAX,
        }
    }

    /// Link occupancy for one message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> Nanos {
        let serialization = if self.bandwidth == u64::MAX {
            Nanos::ZERO
        } else {
            Nanos::from_secs_f64(bytes as f64 / self.bandwidth as f64)
        };
        self.per_message + serialization
    }

    /// End-to-end one-way delivery time for one message: half the RTT of
    /// propagation plus the transfer time.
    pub fn one_way(&self, bytes: usize) -> Nanos {
        self.rtt / 2 + self.transfer_time(bytes)
    }

    /// Total network time for a request/response exchange.
    pub fn round_trip(&self, request_bytes: usize, response_bytes: usize) -> Nanos {
        self.rtt + self.transfer_time(request_bytes) + self.transfer_time(response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_numbers() {
        let net = NetModel::gigabit();
        // 125 MB/s ⇒ 8 ns per byte; 1 KiB ⇒ 8.192 µs + 150 µs overhead.
        let t = net.transfer_time(1024);
        assert_eq!(t, Nanos::from_micros(150) + Nanos::new(8192));
    }

    #[test]
    fn instant_is_free() {
        let net = NetModel::instant();
        assert_eq!(net.transfer_time(1 << 30), Nanos::ZERO);
        assert_eq!(net.round_trip(4096, 4096), Nanos::ZERO);
    }

    #[test]
    fn round_trip_combines_parts() {
        let net = NetModel::gigabit();
        let rt = net.round_trip(100, 100);
        assert_eq!(
            rt,
            net.rtt + net.transfer_time(100) + net.transfer_time(100)
        );
    }

    #[test]
    fn batching_amortizes_per_message_cost() {
        // The core Figure-5 arithmetic: per-chunk cost falls as batch
        // size grows.
        let net = NetModel::gigabit();
        let per_chunk = |batch: usize| {
            net.round_trip(25 + batch * 20, 13 + batch / 8).as_nanos() as f64 / batch as f64
        };
        assert!(per_chunk(1) > 10.0 * per_chunk(128));
        assert!(per_chunk(128) > per_chunk(2048));
    }
}
