//! Workspace root helper crate for the SHHC reproduction.
