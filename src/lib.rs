//! Workspace facade for the SHHC reproduction.
//!
//! This crate exists so a downstream consumer (or a quick experiment) can
//! depend on one name and reach every layer of the workspace. Each layer
//! is re-exported under its short name, mirroring the build graph:
//!
//! | module | layer |
//! |---|---|
//! | [`types`] | shared vocabulary |
//! | [`hash`], [`bloom`], [`cache`], [`chunking`], [`flash`] | substrates |
//! | [`index`], [`net`], [`ring`], [`sim`], [`storage`], [`workload`] | substrates |
//! | [`node`], [`baseline`] | node layer |
//! | [`cluster`] (the `shhc` core crate) | the cluster itself |
//!
//! The common entry points are also re-exported at the root, so the
//! facade is usable exactly like the `shhc` core crate:
//!
//! ```
//! use shhc_repro::{ClusterConfig, ShhcCluster};
//!
//! # fn main() -> Result<(), shhc_repro::types::Error> {
//! let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2))?;
//! let fp = shhc_repro::types::Fingerprint::from_u64(7);
//! assert_eq!(cluster.lookup_insert_batch(&[fp])?, vec![false]);
//! assert_eq!(cluster.lookup_insert_batch(&[fp])?, vec![true]);
//! cluster.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shhc_baseline as baseline;
pub use shhc_bloom as bloom;
pub use shhc_cache as cache;
pub use shhc_chunking as chunking;
pub use shhc_flash as flash;
pub use shhc_hash as hash;
pub use shhc_index as index;
pub use shhc_net as net;
pub use shhc_node as node;
pub use shhc_ring as ring;
pub use shhc_sim as sim;
pub use shhc_storage as storage;
pub use shhc_types as types;
pub use shhc_workload as workload;

/// The cluster layer (the `shhc` core crate).
pub use shhc as cluster;

pub use shhc::{
    BackupReport, BackupService, ClusterConfig, ClusterStats, Frontend, SharedFrontend,
    ShhcCluster, SimCluster, SimClusterConfig, SyncFrontend,
};
