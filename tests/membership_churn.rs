//! Membership churn under live traffic: seeded chaos schedules of
//! join/drain/kill/restart against concurrent backup clients.
//!
//! The invariants, in descending strictness:
//!
//! 1. **Correctness is absolute**: every snapshot taken at any point
//!    restores byte-exactly, whatever the cluster was doing.
//! 2. **No ticket is lost**: every submitted operation completes (client
//!    threads unwrap every result; a hung or dropped ticket fails the
//!    test).
//! 3. **Graceful churn is lossless**: joins and drains alone (no
//!    machine failures) preserve perfect deduplication.
//! 4. **Failures degrade dedup boundedly**: kills may cost re-uploads
//!    (benign redundant copies), counted and asserted against a bound —
//!    never corruption.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use shhc::{
    BackupService, ClusterConfig, DataPlane, Durability, Error, FaultPlan, Fingerprint, NodeId,
    ShhcCluster, StreamId, WalConfig,
};
use shhc_chunking::FixedChunker;
use shhc_storage::MemChunkStore;

fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

/// A test cluster config with enough flash headroom for churn workloads
/// (tens of thousands of entries per node).
fn roomy_config(nodes: u32) -> ClusterConfig {
    let mut node_config = shhc::NodeConfig::small_test();
    node_config.flash = shhc_flash::FlashConfig::medium_test();
    node_config.cache_capacity = 4_096;
    node_config.bloom_expected = 200_000;
    ClusterConfig::new(nodes, node_config)
}

/// The regression the epoch scheme exists for: before the staged
/// protocol, `add_node` scanned old owners under the *old* ring and only
/// swapped the ring at the end — an insert landing on a node after its
/// range was scanned was stranded there, permanently unreachable once
/// routing moved on. With install-first + dual-read + rescan-until-empty,
/// every fingerprint registered before or during the join must keep
/// answering "exists".
fn add_node_strands_no_concurrent_insert(plane: DataPlane) {
    let cluster = ShhcCluster::spawn(
        roomy_config(3)
            .with_data_plane(plane)
            .with_migration_chunk(48),
    )
    .unwrap();
    // A meaty resident population makes the migration long enough for
    // writers to land inserts mid-flight.
    let base = fps(0..6_000);
    for window in base.chunks(500) {
        cluster.lookup_insert_batch(window).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..3u64 {
        let cluster = cluster.clone();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut inserted: Vec<Fingerprint> = Vec::new();
            let mut next = 1_000_000 * (w + 1);
            while !stop.load(Ordering::Relaxed) && inserted.len() < 15_000 {
                let batch = fps(next..next + 100);
                next += 100;
                let exists = cluster.lookup_insert_batch(&batch).unwrap();
                assert!(
                    exists.iter().all(|e| !e),
                    "fresh fingerprints must read as new"
                );
                inserted.extend(batch);
            }
            inserted
        }));
    }

    let (_, report) = cluster.add_node().unwrap();
    assert!(report.moved > 0);
    stop.store(true, Ordering::Relaxed);
    let mut all: Vec<Fingerprint> = base;
    for writer in writers {
        all.extend(writer.join().unwrap());
    }

    // Nothing stranded: every fingerprint registered before or during
    // the join still deduplicates, and the books balance exactly.
    for window in all.chunks(500) {
        let exists = cluster.lookup_insert_batch(window).unwrap();
        let missing = exists.iter().filter(|e| !**e).count();
        assert_eq!(missing, 0, "{missing} fingerprints stranded by the join");
    }
    assert_eq!(
        cluster.stats().unwrap().total_entries(),
        all.len() as u64,
        "every fingerprint lives on exactly one node"
    );
    cluster.shutdown().unwrap();
}

#[test]
fn add_node_under_live_inserts_strands_nothing_sequential() {
    // The Sequential plane is the plane the original bug was provable
    // on (its slower batches held the pre-swap routing state longest).
    add_node_strands_no_concurrent_insert(DataPlane::Sequential);
}

#[test]
fn add_node_under_live_inserts_strands_nothing_pipelined() {
    add_node_strands_no_concurrent_insert(DataPlane::Pipelined);
}

#[test]
fn drain_under_live_inserts_strands_nothing() {
    let cluster = ShhcCluster::spawn(roomy_config(4).with_migration_chunk(48)).unwrap();
    let base = fps(0..6_000);
    for window in base.chunks(500) {
        cluster.lookup_insert_batch(window).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let cluster = cluster.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut inserted: Vec<Fingerprint> = Vec::new();
            let mut next = 10_000_000u64;
            while !stop.load(Ordering::Relaxed) && inserted.len() < 15_000 {
                let batch = fps(next..next + 100);
                next += 100;
                cluster.lookup_insert_batch(&batch).unwrap();
                inserted.extend(batch);
            }
            inserted
        })
    };
    let report = cluster.drain_node(NodeId::new(2)).unwrap();
    stop.store(true, Ordering::Relaxed);
    let mut all = base;
    all.extend(writer.join().unwrap());

    assert_eq!(report.post_scan_entries, 0, "drained node must scan empty");
    for window in all.chunks(500) {
        let exists = cluster.lookup_insert_batch(window).unwrap();
        assert!(
            exists.iter().all(|e| *e),
            "fingerprints stranded by the drain"
        );
    }
    assert_eq!(cluster.stats().unwrap().total_entries(), all.len() as u64);
    cluster.shutdown().unwrap();
}

fn service_on(cluster: &ShhcCluster) -> BackupService<FixedChunker, MemChunkStore> {
    BackupService::new(
        cluster.clone(),
        FixedChunker::new(256),
        MemChunkStore::new(1 << 24),
        64,
    )
}

fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Graceful churn (join + drain, no machine failures) must be lossless:
/// after the dust settles, re-backing up the same data deduplicates
/// every single chunk.
#[test]
fn graceful_churn_preserves_perfect_dedup() {
    let cluster = ShhcCluster::spawn(roomy_config(3).with_migration_chunk(64)).unwrap();
    let service = service_on(&cluster);

    // Phase 1: three sessions back up concurrently while the cluster
    // gains a node and drains another.
    let mut sessions = Vec::new();
    for s in 0..3u32 {
        let service = service.clone();
        sessions.push(std::thread::spawn(move || {
            let data = random_data(120_000, 7_000 + u64::from(s));
            let report = service.backup(StreamId::new(s), &data).unwrap();
            assert_eq!(service.restore(&report.manifest).unwrap(), data);
            (data, report)
        }));
    }
    let (added, add_report) = cluster.add_node().unwrap();
    assert!(add_report.to_epoch > add_report.from_epoch);
    let drain_report = cluster.drain_node(NodeId::new(1)).unwrap();
    assert_eq!(drain_report.post_scan_entries, 0);

    let firsts: Vec<(Vec<u8>, shhc::BackupReport)> =
        sessions.into_iter().map(|s| s.join().unwrap()).collect();

    // Phase 2 (quiet): identical data deduplicates perfectly — graceful
    // membership changes lost nothing.
    for (s, (data, first)) in firsts.iter().enumerate() {
        let second = service.backup(StreamId::new(100 + s as u32), data).unwrap();
        assert_eq!(
            second.new_chunks, 0,
            "graceful churn must not degrade dedup (session {s})"
        );
        assert_eq!(second.duplicate_chunks, second.total_chunks);
        // Both generations restore byte-exactly.
        assert_eq!(&service.restore(&first.manifest).unwrap(), data);
        assert_eq!(&service.restore(&second.manifest).unwrap(), data);
    }

    let stats = cluster.stats().unwrap();
    assert_eq!(stats.epoch, 3);
    assert_eq!(stats.drained, vec![NodeId::new(1)]);
    assert!(stats.nodes.iter().any(|n| n.id == added));
    cluster.shutdown().unwrap();
}

/// One step of a seeded chaos schedule.
#[derive(Debug, Clone, Copy)]
enum ChurnEvent {
    Add,
    Drain,
    /// Kill, then rejoin as an empty cold standby.
    KillRestart,
    /// Kill, then warm-restart: WAL replay (when durable) plus delta
    /// re-sync from replica peers.
    CrashRecover,
    Pause(u64),
}

/// Derives a deterministic event schedule from `seed`. Kills always
/// restart before the next event so at most one replica is cold at a
/// time (the replication-2 coverage the reads rely on).
fn schedule(seed: u64, len: usize) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..5u32) {
            0 => ChurnEvent::Add,
            1 => ChurnEvent::Drain,
            2 => ChurnEvent::KillRestart,
            3 => ChurnEvent::CrashRecover,
            _ => ChurnEvent::Pause(rng.gen_range(1..8)),
        })
        .collect()
}

/// The full chaos suite: K backup clients run snapshot generations while
/// a seeded schedule joins, drains, kills and restarts nodes. Sessions
/// must never observe an error, every manifest must restore byte-exactly,
/// and the post-churn dedup loss (re-uploads caused by kills) must stay
/// under a bound.
#[test]
fn seeded_churn_chaos_keeps_backups_restorable() {
    for seed in [11u64, 29, 47] {
        let cluster =
            ShhcCluster::spawn(roomy_config(3).with_replication(2).with_migration_chunk(64))
                .unwrap();
        let service = service_on(&cluster);

        // K clients, three backup generations each, all concurrent with
        // the chaos schedule.
        let mut clients = Vec::new();
        for c in 0..2u32 {
            let service = service.clone();
            clients.push(std::thread::spawn(move || {
                let mut generations = Vec::new();
                for generation in 0..3u32 {
                    let data =
                        random_data(90_000, u64::from(c) * 1_000 + u64::from(generation) + seed);
                    let stream = StreamId::new(c * 10 + generation);
                    let report = service.backup(stream, &data).unwrap();
                    // Correctness invariant 1: immediate byte-exact
                    // restore, mid-churn.
                    assert_eq!(service.restore(&report.manifest).unwrap(), data);
                    generations.push((data, report));
                }
                generations
            }));
        }

        // Drive the schedule. Membership ops serialize internally; the
        // driver tracks which ids are running ring members.
        let mut killable: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for event in schedule(seed, 6) {
            match event {
                ChurnEvent::Add => {
                    let (id, _) = cluster.add_node().unwrap();
                    killable.push(id);
                }
                ChurnEvent::Drain => {
                    if killable.len() > 2 {
                        let victim = killable.remove(0);
                        let report = cluster.drain_node(victim).unwrap();
                        assert_eq!(
                            report.post_scan_entries, 0,
                            "drain (seed {seed}) left entries behind"
                        );
                    }
                }
                ChurnEvent::KillRestart => {
                    if let Some(&victim) = killable.last() {
                        cluster.kill_node(victim).unwrap();
                        std::thread::sleep(Duration::from_millis(5));
                        cluster.restart_cold(victim).unwrap();
                    }
                }
                ChurnEvent::CrashRecover => {
                    if let Some(&victim) = killable.last() {
                        cluster.kill_node(victim).unwrap();
                        std::thread::sleep(Duration::from_millis(5));
                        let report = cluster.restart_node(victim).unwrap();
                        assert!(
                            report.chunks <= report.resynced.max(1),
                            "seed {seed}: re-sync shipped {} chunks for {} entries",
                            report.chunks,
                            report.resynced
                        );
                    }
                }
                ChurnEvent::Pause(ms) => std::thread::sleep(Duration::from_millis(ms)),
            }
        }

        let all: Vec<Vec<(Vec<u8>, shhc::BackupReport)>> =
            clients.into_iter().map(|c| c.join().unwrap()).collect();

        // Invariant 1 again, post-churn: every generation of every client
        // still restores byte-exactly.
        for generations in &all {
            for (data, report) in generations {
                assert_eq!(&service.restore(&report.manifest).unwrap(), data);
            }
        }

        // Invariant 4: dedup degradation is bounded. Kills lose replica
        // copies, so some chunks legitimately re-upload — but the
        // surviving replica plus dual-read must keep the loss well under
        // total amnesia.
        let mut total = 0usize;
        let mut reuploaded = 0usize;
        for (c, generations) in all.iter().enumerate() {
            for (g, (data, _)) in generations.iter().enumerate() {
                let again = service
                    .backup(StreamId::new(200 + (c * 10 + g) as u32), data)
                    .unwrap();
                total += again.total_chunks;
                reuploaded += again.new_chunks;
            }
        }
        let fraction = reuploaded as f64 / total.max(1) as f64;
        println!(
            "seed {seed}: {reuploaded}/{total} chunks re-uploaded \
             ({:.1}% dedup loss) after churn",
            fraction * 100.0
        );
        assert!(
            fraction <= 0.5,
            "seed {seed}: dedup degradation {fraction:.3} exceeds bound"
        );

        // An anti-entropy pass then repairs replica sets from survivors:
        // afterwards the same data deduplicates perfectly again.
        cluster.rebalance().unwrap();
        let probe = &all[0][0].0;
        let after = service.backup(StreamId::new(250), probe).unwrap();
        assert_eq!(
            after.new_chunks, 0,
            "seed {seed}: rebalance must restore full dedup for surviving data"
        );
        cluster.shutdown().unwrap();
    }
}

/// Satellite: cold-standby semantics of `restart_cold`. A restarted node
/// relearns entries as traffic arrives, and an explicit rebalance
/// repopulates its full share — `entry_shares` re-converges.
#[test]
fn restarted_node_relearns_and_rebalance_reconverges_shares() {
    let cluster = ShhcCluster::spawn(roomy_config(3).with_replication(2)).unwrap();
    let all = fps(0..3_000);
    for window in all.chunks(500) {
        cluster.lookup_insert_batch(window).unwrap();
    }
    let victim = NodeId::new(1);
    cluster.kill_node(victim).unwrap();
    // Reads survive the crash via the second replica.
    let exists = cluster.lookup_insert_batch(&all[..500]).unwrap();
    assert!(exists.iter().all(|e| *e));

    cluster.restart_cold(victim).unwrap();
    let cold = cluster.stats().unwrap();
    let empty = cold.nodes.iter().find(|n| n.id == victim).unwrap();
    assert_eq!(empty.entries, 0, "cold standby restarts empty");

    // Traffic re-learns: lookups fan to all replicas, so the restarted
    // node re-registers its share of whatever the stream touches.
    for window in all.chunks(500) {
        let exists = cluster.lookup_insert_batch(window).unwrap();
        assert!(exists.iter().all(|e| *e), "replicas must still answer");
    }
    let relearned = cluster.stats().unwrap();
    let node = relearned.nodes.iter().find(|n| n.id == victim).unwrap();
    assert!(
        node.entries > 0,
        "traffic must repopulate the restarted node"
    );

    // An explicit rebalance completes the repopulation: every entry is
    // back on both of its replicas and the share distribution
    // re-converges to ≈ 1/3 per node.
    let report = cluster.rebalance().unwrap();
    assert!(report.scanned > 0);
    let stats = cluster.stats().unwrap();
    assert_eq!(stats.total_entries(), 2 * all.len() as u64);
    for (node, share) in stats.entry_shares() {
        assert!(
            (0.2..0.47).contains(&share),
            "{node} share {share:.3} did not re-converge"
        );
    }
    cluster.shutdown().unwrap();
}

/// Client deletes racing a migration must not resurrect: a fingerprint
/// removed mid-join stays gone afterwards.
#[test]
fn removes_during_migration_do_not_resurrect() {
    let cluster = ShhcCluster::spawn(roomy_config(2).with_migration_chunk(16)).unwrap();
    let all = fps(0..3_000);
    for window in all.chunks(500) {
        cluster.lookup_insert_batch(window).unwrap();
    }
    // Remove a slice of the population concurrently with the join.
    let doomed: Vec<Fingerprint> = all.iter().copied().step_by(3).collect();
    let remover = {
        let cluster = cluster.clone();
        let doomed = doomed.clone();
        std::thread::spawn(move || {
            for window in doomed.chunks(100) {
                cluster.remove_batch(window).unwrap();
            }
        })
    };
    cluster.add_node().unwrap();
    remover.join().unwrap();

    let exists = cluster.query_batch(&doomed).unwrap();
    let resurrected = exists.iter().filter(|e| **e).count();
    assert_eq!(
        resurrected, 0,
        "{resurrected} removed fingerprints resurrected by migration"
    );
    // The survivors are all still there.
    let keep: Vec<Fingerprint> = all
        .iter()
        .copied()
        .filter(|fp| !doomed.contains(fp))
        .collect();
    let exists = cluster.query_batch(&keep).unwrap();
    assert!(exists.iter().all(|e| *e), "survivor lost during migration");
    cluster.shutdown().unwrap();
}

/// Satellite: crash recovery under live backup traffic. A WAL-backed
/// node is killed mid-backup with dirty-shutdown fault injection armed
/// (torn journal/segment tails), warm-restarted, and the suite asserts
/// the durability contract: zero client-recorded entries lost (every
/// acked chunk still deduplicates), byte-exact restores, and re-sync
/// traffic bounded by the entries actually moved.
#[test]
fn crash_recover_mid_backup_loses_nothing() {
    let dir = std::env::temp_dir().join(format!("shhc-churn-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = roomy_config(3).with_replication(2).with_migration_chunk(64);
    // Durable nodes whose every dirty shutdown also tears the final
    // journal + segment records — recovery must truncate, not replay.
    config.node_config.durability =
        Durability::Wal(WalConfig::new(&dir).with_fault(FaultPlan::torn_tails()));
    let cluster = ShhcCluster::spawn(config).unwrap();
    let service = service_on(&cluster);

    // A client runs backup generations while the crash happens.
    let worker = {
        let service = service.clone();
        std::thread::spawn(move || {
            let mut generations = Vec::new();
            for generation in 0..3u32 {
                let data = random_data(90_000, 40_000 + u64::from(generation));
                let report = service.backup(StreamId::new(generation), &data).unwrap();
                assert_eq!(service.restore(&report.manifest).unwrap(), data);
                generations.push((data, report));
            }
            generations
        })
    };

    std::thread::sleep(Duration::from_millis(3));
    let victim = NodeId::new(2);
    cluster.kill_node(victim).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let report = cluster.restart_node(victim).unwrap();
    assert!(
        report.recovered_entries > 0 || report.replayed == 0,
        "a node that replayed WAL records must recover entries"
    );
    assert!(
        report.chunks <= report.resynced.max(1),
        "re-sync shipped {} chunks for {} entries",
        report.chunks,
        report.resynced
    );

    let generations = worker.join().unwrap();

    // Zero lost client-recorded entries: every acked chunk still
    // deduplicates, and every snapshot restores byte-exactly.
    for (i, (data, first)) in generations.iter().enumerate() {
        assert_eq!(&service.restore(&first.manifest).unwrap(), data);
        let again = service.backup(StreamId::new(300 + i as u32), data).unwrap();
        assert_eq!(
            again.new_chunks, 0,
            "generation {i}: client-recorded entries lost in the crash"
        );
    }

    let stats = cluster.stats().unwrap();
    assert_eq!(stats.recovered, vec![victim]);
    assert!(stats.crashed.is_empty());
    assert_eq!(stats.resync_moved, report.resynced);
    assert_eq!(stats.resync_chunks, report.chunks);
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Errors keep their shape under churn: killing a node without
/// replication makes its share unavailable (not silently new), and the
/// epoch counter tracks every membership change.
#[test]
fn epoch_and_error_bookkeeping_across_churn() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    assert_eq!(cluster.epoch(), 1);
    cluster.add_node().unwrap();
    assert_eq!(cluster.epoch(), 2);
    cluster.drain_node(NodeId::new(0)).unwrap();
    assert_eq!(cluster.epoch(), 3);

    cluster.lookup_insert_batch(&fps(0..500)).unwrap();
    cluster.kill_node(NodeId::new(1)).unwrap();
    let err = cluster.lookup_insert_batch(&fps(0..500)).unwrap_err();
    assert!(matches!(err, Error::Unavailable(_)), "{err}");
    assert_eq!(cluster.alive_count(), 1);
    assert_eq!(cluster.drained_count(), 1);
    let stats = cluster.stats().unwrap();
    assert_eq!(stats.crashed, vec![NodeId::new(1)]);
    assert_eq!(stats.drained, vec![NodeId::new(0)]);
    cluster.shutdown().unwrap();
}
