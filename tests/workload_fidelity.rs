//! Workload-generator fidelity: the synthetic traces must measure back
//! close to their Table I targets, and survive mixing and file I/O.

use shhc_workload::{characterize, load_trace, mix, presets, save_trace, TraceSpec};

#[test]
fn table1_targets_reproduced_at_scale_32() {
    // At 1/32 scale each trace still has 65k-750k fingerprints — enough
    // for the statistics to converge near their targets.
    for spec in presets::all() {
        let scaled = spec.clone().scaled(32);
        let trace = scaled.generate();
        let stats = characterize(&trace.fingerprints);

        assert_eq!(stats.total, scaled.total, "{}", spec.name);
        assert!(
            (stats.redundant_fraction - spec.redundancy).abs() < 0.04,
            "{}: redundancy {} vs target {}",
            spec.name,
            stats.redundant_fraction,
            spec.redundancy
        );
        let distance_ratio = stats.mean_duplicate_distance / scaled.mean_distance;
        assert!(
            (0.4..2.5).contains(&distance_ratio),
            "{}: distance {} vs target {}",
            spec.name,
            stats.mean_duplicate_distance,
            scaled.mean_distance
        );
    }
}

#[test]
fn distance_ordering_matches_paper() {
    // The paper's locality ordering: web < home < mail < time machine.
    let measured: Vec<f64> = presets::all()
        .into_iter()
        .map(|spec| {
            let trace = spec.scaled(64).generate();
            characterize(&trace.fingerprints).mean_duplicate_distance
        })
        .collect();
    assert!(
        measured[0] < measured[1] && measured[1] < measured[2] && measured[2] < measured[3],
        "distance ordering broken: {measured:?}"
    );
}

#[test]
fn redundancy_ordering_matches_paper() {
    // Mail server (85%) ≫ home dir (37%) > web server (18%) ≈ TM (17%).
    let measured: Vec<f64> = presets::all()
        .into_iter()
        .map(|spec| {
            let trace = spec.scaled(64).generate();
            characterize(&trace.fingerprints).redundant_fraction
        })
        .collect();
    assert!(measured[2] > measured[1], "mail > home");
    assert!(measured[1] > measured[0], "home > web");
    assert!((measured[0] - measured[3]).abs() < 0.06, "web ≈ TM");
}

#[test]
fn mixing_preserves_stream_counts_and_populations() {
    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(256).generate())
        .collect();
    let mixed = mix(&traces, 11);
    let total: usize = traces.iter().map(|t| t.len()).sum();
    assert_eq!(mixed.len(), total);

    // Characteristics of the mix: redundancy is the weighted average of
    // the components (fingerprint populations are disjoint).
    let stats = characterize(&mixed);
    let expected_unique: usize = traces
        .iter()
        .map(|t| characterize(&t.fingerprints).unique)
        .sum();
    assert_eq!(stats.unique, expected_unique);
}

#[test]
fn trace_files_round_trip() {
    let spec = TraceSpec {
        name: "integration-io".into(),
        total: 10_000,
        redundancy: 0.3,
        mean_distance: 120.0,
        distance_cv: 1.0,
        chunk_size: 4096,
        seed: 77,
    };
    let trace = spec.generate();
    let path = std::env::temp_dir().join(format!("shhc_wl_{}.trace", std::process::id()));
    save_trace(&trace, &path).unwrap();
    let loaded = load_trace(&path).unwrap();
    assert_eq!(loaded, trace);
    assert_eq!(
        characterize(&loaded.fingerprints),
        characterize(&trace.fingerprints)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn generation_is_seed_stable_across_runs() {
    // Regression pin: the generator must stay bit-stable so experiment
    // results are comparable across commits. If this test fails, the
    // generator changed behaviourally — update EXPERIMENTS.md baselines.
    let trace = presets::web_server().scaled(512).generate();
    let stats = characterize(&trace.fingerprints);
    assert_eq!(stats.total, 4091);
    // The first fingerprints are a stable function of (seed, algorithm).
    let again = presets::web_server().scaled(512).generate();
    assert_eq!(trace.fingerprints, again.fingerprints);
}
