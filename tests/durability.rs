//! End-to-end durability: WAL-backed clusters under kill -9, dirty
//! shutdowns with torn log tails, cold-vs-warm restarts, and
//! cross-process-style reopen (a fresh cluster over the same data dir).
//!
//! The contract under test, from strongest to weakest:
//!
//! 1. **Acked implies durable**: every frame the cluster acknowledged
//!    before a crash is recovered by a warm restart — byte-exact values,
//!    even with `replication = 1` (no peer to lean on).
//! 2. **Torn tails are detected, truncated, never replayed**: dirty
//!    shutdowns that leave partially written journal/segment records
//!    must not corrupt recovery or invent state.
//! 3. **Cold restarts wipe**: `restart_cold` discards durable state —
//!    the historical empty-standby semantics stay available.

use shhc::{
    ClusterConfig, Durability, FaultPlan, Fingerprint, NodeConfig, NodeId, ShhcCluster, WalConfig,
};

fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("shhc-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(nodes: u32, dir: &std::path::Path) -> ClusterConfig {
    let node_config = NodeConfig::small_test().with_durability(Durability::wal(dir));
    ClusterConfig::new(nodes, node_config)
}

/// Acceptance: kill -9 mid-load, warm restart, zero lost acked entries.
/// `replication = 1` makes the WAL the *only* copy — nothing can be
/// papered over by a replica.
#[test]
fn acked_entries_survive_kill_nine_without_replication() {
    let dir = wal_dir("kill9");
    let cluster = ShhcCluster::spawn(durable_config(2, &dir)).unwrap();
    let batch = fps(0..2_000);
    cluster.lookup_insert_batch(&batch).unwrap();
    // Re-looking the batch up returns the stored values (inserts carry
    // no values on the wire; duplicates do).
    let (_, values) = cluster.lookup_insert_batch_values(&batch).unwrap();

    // kill -9 both nodes: threads exit without closing their stores.
    cluster.kill_node(NodeId::new(0)).unwrap();
    cluster.kill_node(NodeId::new(1)).unwrap();
    let r0 = cluster.restart_node(NodeId::new(0)).unwrap();
    let r1 = cluster.restart_node(NodeId::new(1)).unwrap();
    assert_eq!(
        r0.recovered_entries + r1.recovered_entries,
        batch.len() as u64,
        "every acked entry must be rebuilt from the WALs"
    );
    // No replicas to pull from: recovery was purely local replay.
    assert_eq!(r0.resynced + r1.resynced, 0);

    let (exists, after) = cluster.lookup_insert_batch_values(&batch).unwrap();
    assert!(exists.iter().all(|e| *e), "acked entries lost by the crash");
    assert_eq!(values, after, "recovered values differ from acked values");
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dirty shutdown: every crash also tears the final journal and segment
/// records. Recovery must detect the torn tails by checksum, truncate
/// them, and still serve every acked entry.
#[test]
fn torn_log_tails_are_truncated_never_replayed() {
    let dir = wal_dir("torn");
    let mut config = durable_config(1, &dir);
    config.node_config.durability =
        Durability::Wal(WalConfig::new(&dir).with_fault(FaultPlan::torn_tails()));
    let cluster = ShhcCluster::spawn(config).unwrap();
    let batch = fps(0..1_000);
    cluster.lookup_insert_batch(&batch).unwrap();

    cluster.kill_node(NodeId::new(0)).unwrap();
    let report = cluster.restart_node(NodeId::new(0)).unwrap();
    assert_eq!(report.recovered_entries, batch.len() as u64);
    assert!(
        report.torn >= 1,
        "the armed fault plan must have torn at least one tail record"
    );

    let exists = cluster.lookup_insert_batch(&batch).unwrap();
    assert!(exists.iter().all(|e| *e));
    // The node's snapshot carries the recovery counters too.
    let stats = cluster.stats().unwrap();
    let node = &stats.nodes[0];
    assert_eq!(node.stats.recovered_entries, batch.len() as u64);
    assert!(node.stats.recovery_torn >= 1);
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repeated crash/recover cycles with live writes between crashes: each
/// generation's acked writes accumulate; nothing regresses.
#[test]
fn repeated_crash_recover_cycles_accumulate_state() {
    let dir = wal_dir("cycles");
    let cluster = ShhcCluster::spawn(durable_config(1, &dir)).unwrap();
    let mut all: Vec<Fingerprint> = Vec::new();
    for round in 0..4u64 {
        let batch = fps(round * 500..(round + 1) * 500);
        cluster.lookup_insert_batch(&batch).unwrap();
        all.extend(batch);
        cluster.kill_node(NodeId::new(0)).unwrap();
        let report = cluster.restart_node(NodeId::new(0)).unwrap();
        assert_eq!(
            report.recovered_entries,
            all.len() as u64,
            "round {round}: recovery lost ground"
        );
        let exists = cluster.lookup_insert_batch(&all).unwrap();
        assert!(exists.iter().all(|e| *e), "round {round} lost entries");
    }
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A sharded durable node keeps one WAL per shard and recovers them all.
#[test]
fn sharded_durable_node_recovers_every_shard() {
    let dir = wal_dir("sharded");
    let mut config = durable_config(1, &dir);
    config.node_config = config.node_config.with_shards(4);
    let cluster = ShhcCluster::spawn(config).unwrap();
    let batch = fps(0..2_000);
    cluster.lookup_insert_batch(&batch).unwrap();
    let (_, values) = cluster.lookup_insert_batch_values(&batch).unwrap();

    cluster.kill_node(NodeId::new(0)).unwrap();
    let report = cluster.restart_node(NodeId::new(0)).unwrap();
    assert_eq!(report.recovered_entries, batch.len() as u64);

    let (exists, after) = cluster.lookup_insert_batch_values(&batch).unwrap();
    assert!(exists.iter().all(|e| *e));
    assert_eq!(values, after, "a shard recovered the wrong values");
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `restart_cold` discards durable state: the node rejoins empty even
/// though its WAL held every entry, and the wiped directory cannot leak
/// into a later warm restart.
#[test]
fn cold_restart_wipes_the_wal() {
    let dir = wal_dir("cold");
    let cluster = ShhcCluster::spawn(durable_config(1, &dir)).unwrap();
    cluster.lookup_insert_batch(&fps(0..500)).unwrap();
    cluster.kill_node(NodeId::new(0)).unwrap();
    cluster.restart_cold(NodeId::new(0)).unwrap();
    let stats = cluster.stats().unwrap();
    assert_eq!(stats.nodes[0].entries, 0, "cold standby must start empty");
    assert!(stats.recovered.is_empty());

    // A second crash/warm-restart finds nothing to replay either.
    cluster.kill_node(NodeId::new(0)).unwrap();
    let report = cluster.restart_node(NodeId::new(0)).unwrap();
    assert_eq!(report.recovered_entries, 0);
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Clean shutdown, then a brand-new cluster over the same data dir (the
/// process-restart story): every entry reopens with its value intact.
#[test]
fn fresh_cluster_reopens_cleanly_shut_down_state() {
    let dir = wal_dir("reopen");
    let batch = fps(0..1_500);
    let values = {
        let cluster = ShhcCluster::spawn(durable_config(2, &dir)).unwrap();
        cluster.lookup_insert_batch(&batch).unwrap();
        let (_, values) = cluster.lookup_insert_batch_values(&batch).unwrap();
        cluster.shutdown().unwrap(); // clean close: journals checkpointed
        values
    };
    let cluster = ShhcCluster::spawn(durable_config(2, &dir)).unwrap();
    let (exists, after) = cluster.lookup_insert_batch_values(&batch).unwrap();
    assert!(exists.iter().all(|e| *e), "reopened cluster lost entries");
    assert_eq!(values, after);
    let stats = cluster.stats().unwrap();
    assert_eq!(stats.total_entries(), batch.len() as u64);
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
