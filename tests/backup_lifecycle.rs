//! The full backup lifecycle: create, deduplicate, delete, garbage
//! collect, and re-ingest — exercising refcounts, fingerprint removal
//! and the bloom filter's inability to unlearn.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use shhc::prelude::*;
use shhc::{BackupService, ClusterConfig, ShhcCluster};

fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn service(nodes: u32) -> BackupService<FixedChunker, MemChunkStore> {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(nodes)).unwrap();
    BackupService::new(
        cluster,
        FixedChunker::new(512),
        MemChunkStore::new(1 << 20),
        64,
    )
}

#[test]
fn delete_frees_unshared_chunks() {
    let svc = service(2);
    let data = random_data(20_000, 1);
    let report = svc.backup(StreamId::new(1), &data).unwrap();
    assert_eq!(svc.store().stats().chunks, 40);

    let del = svc.delete_backup(&report.manifest).unwrap();
    assert_eq!(del.references_released, 40);
    assert_eq!(del.chunks_freed, 40);
    assert_eq!(svc.store().stats().chunks, 0);
    assert_eq!(svc.store().stats().bytes, 0);
    // The cluster forgot the fingerprints too.
    assert_eq!(svc.cluster().stats().unwrap().total_entries(), 0);
}

#[test]
fn delete_keeps_chunks_shared_with_other_backups() {
    let svc = service(3);
    let data = random_data(10_000, 2);
    let first = svc.backup(StreamId::new(1), &data).unwrap();
    let second = svc.backup(StreamId::new(2), &data).unwrap();

    let del = svc.delete_backup(&first.manifest).unwrap();
    assert_eq!(del.chunks_freed, 0, "second backup still references all");
    // The surviving backup restores byte-identically.
    assert_eq!(svc.restore(&second.manifest).unwrap(), data);

    // Deleting the second frees everything.
    let del = svc.delete_backup(&second.manifest).unwrap();
    assert_eq!(del.chunks_freed, 20);
    assert_eq!(svc.store().stats().chunks, 0);
}

#[test]
fn reingest_after_delete_stores_fresh_copies() {
    let svc = service(2);
    let data = random_data(5_000, 3);
    let first = svc.backup(StreamId::new(1), &data).unwrap();
    svc.delete_backup(&first.manifest).unwrap();

    // After GC, the same data is new again (bloom false positives may
    // cost an SSD probe, but must not cause false "exists" answers).
    let again = svc.backup(StreamId::new(2), &data).unwrap();
    assert_eq!(again.new_chunks, again.total_chunks);
    assert_eq!(svc.restore(&again.manifest).unwrap(), data);
}

#[test]
fn partial_overlap_deletes_only_unshared() {
    let svc = service(2);
    let shared = random_data(8_192, 4);
    let mut a = shared.clone();
    a.extend_from_slice(&random_data(4_096, 5));
    let mut b = shared.clone();
    b.extend_from_slice(&random_data(4_096, 6));

    let ra = svc.backup(StreamId::new(1), &a).unwrap();
    let rb = svc.backup(StreamId::new(2), &b).unwrap();
    assert_eq!(rb.duplicate_chunks, 16, "the shared prefix dedups");

    let del = svc.delete_backup(&ra.manifest).unwrap();
    // Only A's unique tail (8 chunks of 512) is freed.
    assert_eq!(del.chunks_freed, 8);
    assert_eq!(svc.restore(&rb.manifest).unwrap(), b);
}

#[test]
fn intra_backup_duplicates_release_cleanly() {
    let svc = service(2);
    let block = random_data(512, 7);
    let data: Vec<u8> = block.iter().copied().cycle().take(512 * 30).collect();
    let report = svc.backup(StreamId::new(1), &data).unwrap();
    assert_eq!(report.new_chunks, 1);
    // One chunk, 30 references (one per manifest entry).
    let del = svc.delete_backup(&report.manifest).unwrap();
    assert_eq!(del.references_released, 30);
    assert_eq!(del.chunks_freed, 1);
    assert_eq!(svc.store().stats().chunks, 0);
}

#[test]
fn generational_backups_gc_incrementally() {
    // A rolling window of 3 retained backups over slowly mutating data.
    let svc = service(3);
    let mut data = random_data(30_000, 8);
    let mut retained: Vec<(shhc_storage::BackupManifest, Vec<u8>)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(99);

    for generation in 0..8u32 {
        // Mutate ~5% of the chunks.
        for _ in 0..3 {
            let at = (rng.next_u32() as usize % (data.len() / 512)) * 512;
            let patch = random_data(512, 1000 + generation as u64);
            data[at..at + 512].copy_from_slice(&patch);
        }
        let report = svc.backup(StreamId::new(generation), &data).unwrap();
        retained.push((report.manifest, data.clone()));
        if retained.len() > 3 {
            let (old, _) = retained.remove(0);
            svc.delete_backup(&old).unwrap();
        }
        // Every retained generation must still restore.
        for (manifest, snapshot) in &retained {
            assert_eq!(&svc.restore(manifest).unwrap(), snapshot);
        }
    }
    // Storage holds no more than the union of the retained generations.
    let live_chunks = svc.store().stats().chunks;
    assert!(
        live_chunks <= 59 + 9,
        "GC is leaking: {live_chunks} chunks for 3 retained generations"
    );
}
