//! Cluster-level behaviour: concurrency, membership change, replication,
//! and failure handling across the real threaded implementation.

use shhc::{ClusterConfig, Frontend, ShhcCluster};
use shhc_types::{Error, Fingerprint, Nanos, NodeId};

fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

#[test]
fn cluster_is_a_coherent_global_index() {
    // Whatever the batch boundaries and interleavings, the cluster as a
    // whole must behave like one big set.
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(4)).unwrap();
    let all = fps(0..2_000);
    let mut reference = std::collections::HashSet::new();
    for window in all.chunks(97) {
        let exists = cluster.lookup_insert_batch(window).unwrap();
        for (fp, e) in window.iter().zip(exists) {
            assert_eq!(e, reference.contains(fp), "{fp}");
            reference.insert(*fp);
        }
    }
    // Replay in a different batch grouping: everything exists.
    for window in all.chunks(31) {
        assert!(cluster
            .lookup_insert_batch(window)
            .unwrap()
            .iter()
            .all(|e| *e));
    }
    assert_eq!(cluster.stats().unwrap().total_entries(), 2_000);
    cluster.shutdown().unwrap();
}

#[test]
fn load_balances_across_nodes() {
    // Medium-sized stores: 20k entries exceed the tiny test device.
    let node_config = shhc::NodeConfig {
        flash: shhc_flash::FlashConfig::medium_test(),
        bloom_expected: 100_000,
        ..shhc::NodeConfig::small_test()
    };
    let cluster = ShhcCluster::spawn(ClusterConfig::new(4, node_config)).unwrap();
    cluster.lookup_insert_batch(&fps(0..20_000)).unwrap();
    let stats = cluster.stats().unwrap();
    for (node, share) in stats.entry_shares() {
        assert!(
            (0.15..0.35).contains(&share),
            "{node} holds {share:.3} of entries; expected ≈0.25"
        );
    }
    cluster.shutdown().unwrap();
}

#[test]
fn concurrent_writers_never_lose_entries() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3)).unwrap();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let cluster = cluster.clone();
        handles.push(std::thread::spawn(move || {
            // Each thread owns a disjoint key range.
            let mine = fps(t * 500..(t + 1) * 500);
            for window in mine.chunks(50) {
                cluster.lookup_insert_batch(window).unwrap();
            }
            // Every key must be present afterwards.
            let exists = cluster.query_batch(&mine).unwrap();
            assert!(exists.iter().all(|e| *e));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cluster.stats().unwrap().total_entries(), 4_000);
    cluster.shutdown().unwrap();
}

#[test]
fn overlapping_concurrent_writers_converge() {
    // All threads hammer the SAME keys; the index must end with exactly
    // one entry per key.
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let shared = fps(0..300);
    let mut handles = Vec::new();
    for _ in 0..6 {
        let cluster = cluster.clone();
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            for window in shared.chunks(30) {
                cluster.lookup_insert_batch(window).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cluster.stats().unwrap().total_entries(), 300);
    cluster.shutdown().unwrap();
}

#[test]
fn frontend_batches_and_answers_everything() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let mut frontend = Frontend::new(cluster.clone(), 64, Nanos::from_secs(10));
    let stream = fps(0..1_000);
    let mut answers = Vec::new();
    for fp in &stream {
        if let Some(batch) = frontend.submit(*fp).unwrap() {
            answers.extend(batch);
        }
    }
    answers.extend(frontend.flush().unwrap());
    assert_eq!(answers.len(), 1_000);
    assert!(answers.iter().all(|(_, existed)| !existed));
    assert!(frontend.batches_sent() >= 15);
    cluster.shutdown().unwrap();
}

#[test]
fn growth_preserves_every_answer() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let stream = fps(0..5_000);
    cluster.lookup_insert_batch(&stream).unwrap();

    // Grow twice.
    for _ in 0..2 {
        let (_, report) = cluster.add_node().unwrap();
        assert!(report.moved > 0);
        let exists = cluster.lookup_insert_batch(&stream).unwrap();
        assert!(exists.iter().all(|e| *e), "growth lost fingerprints");
        assert_eq!(cluster.stats().unwrap().total_entries(), 5_000);
    }
    // New nodes carry a meaningful share.
    let stats = cluster.stats().unwrap();
    let shares = stats.entry_shares();
    assert_eq!(shares.len(), 4);
    for (node, share) in shares {
        assert!(share > 0.1, "{node} holds only {share:.3}");
    }
    cluster.shutdown().unwrap();
}

#[test]
fn replicated_cluster_masks_single_failures_fully() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(4).with_replication(2)).unwrap();
    let stream = fps(0..2_000);
    cluster.lookup_insert_batch(&stream).unwrap();

    for victim in 0..4u32 {
        cluster.kill_node(NodeId::new(victim)).unwrap();
        let exists = cluster.lookup_insert_batch(&stream).unwrap();
        let found = exists.iter().filter(|e| **e).count();
        assert_eq!(
            found, 2_000,
            "with r=2, killing {victim} must not lose answers"
        );
        cluster.restart_cold(NodeId::new(victim)).unwrap();
        // Re-warm the cold node: the fan-out write path re-registers
        // every fingerprint on it, restoring the replication factor
        // before the next failure (a stand-in for anti-entropy repair).
        cluster.lookup_insert_batch(&stream).unwrap();
    }
    cluster.shutdown().unwrap();
}

#[test]
fn unreplicated_cluster_reports_unavailable() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(4)).unwrap();
    let stream = fps(0..1_000);
    cluster.lookup_insert_batch(&stream).unwrap();
    cluster.kill_node(NodeId::new(2)).unwrap();
    match cluster.lookup_insert_batch(&stream) {
        Err(Error::Unavailable(_)) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
    // Queries to surviving ranges still work.
    let survivors: Vec<Fingerprint> = stream
        .iter()
        .filter(|fp| {
            // Keep only fingerprints the dead node does not own: probe
            // one by one and keep the ones that answer.
            cluster.query_batch(std::slice::from_ref(fp)).is_ok()
        })
        .copied()
        .collect();
    assert!(!survivors.is_empty());
    cluster.shutdown().unwrap();
}

#[test]
fn flush_all_persists_buffers() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3)).unwrap();
    cluster.lookup_insert_batch(&fps(0..500)).unwrap();
    cluster.flush_all().unwrap();
    let stats = cluster.stats().unwrap();
    // After a flush, flash devices have seen programs.
    assert!(stats.nodes.iter().any(|n| n.device.programs > 0));
    assert_eq!(stats.total_entries(), 500);
    cluster.shutdown().unwrap();
}
