//! Baseline indexes: all designs must agree on *answers* while differing
//! in *cost* exactly the way their papers claim.

use shhc_baseline::{ChunkStashIndex, DdfsIndex, FingerprintIndex, HddIndex, ShhcNodeIndex};
use shhc_node::{HybridHashNode, NodeConfig};
use shhc_types::{Nanos, NodeId};
use shhc_workload::presets;

fn all_indexes() -> Vec<Box<dyn FingerprintIndex>> {
    vec![
        Box::new(HddIndex::small_test()),
        Box::new(ChunkStashIndex::small_test().unwrap()),
        Box::new(DdfsIndex::small_test()),
        Box::new(ShhcNodeIndex::new(
            HybridHashNode::new(NodeId::new(0), NodeConfig::small_test()).unwrap(),
        )),
    ]
}

#[test]
fn identical_answers_on_a_real_workload_shape() {
    let trace = presets::home_dir().scaled(512).generate();
    let mut indexes = all_indexes();
    let mut reference = std::collections::HashSet::new();
    for (i, fp) in trace.fingerprints.iter().enumerate() {
        let expected = reference.contains(fp);
        for index in &mut indexes {
            let got = index.lookup_insert(*fp).unwrap().existed;
            assert_eq!(got, expected, "{} diverged at position {i}", index.name());
        }
        reference.insert(*fp);
    }
    for index in &indexes {
        assert_eq!(index.entries(), reference.len() as u64, "{}", index.name());
    }
}

#[test]
fn cost_ordering_matches_the_literature() {
    // On a redundancy-heavy workload with cold lookups, the HDD index
    // pays seeks per duplicate while flash-based designs pay microseconds
    // — the 7x-60x ChunkStash claim comes from exactly this gap.
    let trace = presets::mail_server().scaled(2048).generate();

    let mut hdd = HddIndex::small_test();
    let mut stash = ChunkStashIndex::new(
        trace.len(),
        shhc_flash::FlashConfig::small_test_with_latency(),
        Nanos::from_micros(1),
    )
    .unwrap();

    for fp in &trace.fingerprints {
        hdd.lookup_insert(*fp).unwrap();
        stash.lookup_insert(*fp).unwrap();
    }
    let hdd_per_op = hdd.busy().as_nanos() as f64 / trace.len() as f64;
    let stash_per_op = stash.busy().as_nanos() as f64 / trace.len() as f64;
    let speedup = hdd_per_op / stash_per_op;
    assert!(
        speedup > 5.0,
        "flash index should be ≫ disk index; got only {speedup:.1}x"
    );
}

#[test]
fn ddfs_locality_cache_beats_naive_disk() {
    // Sequential second backup: DDFS's container prefetch turns per-chunk
    // seeks into per-container seeks.
    let trace = presets::web_server().scaled(1024).generate();
    let mut ddfs = DdfsIndex::small_test();
    let mut hdd = HddIndex::small_test();
    // First pass (mostly new).
    for fp in &trace.fingerprints {
        ddfs.lookup_insert(*fp).unwrap();
        hdd.lookup_insert(*fp).unwrap();
    }
    let (d0, h0) = (ddfs.busy(), hdd.busy());
    // Second pass (all duplicates, in original order — full locality).
    for fp in &trace.fingerprints {
        ddfs.lookup_insert(*fp).unwrap();
        hdd.lookup_insert(*fp).unwrap();
    }
    let ddfs_second = (ddfs.busy() - d0).as_nanos() as f64;
    let hdd_second = (hdd.busy() - h0).as_nanos() as f64;
    assert!(
        hdd_second / ddfs_second > 3.0,
        "locality caching should amortize seeks: ddfs {ddfs_second} vs hdd {hdd_second}"
    );
}

#[test]
fn shhc_node_bloom_keeps_cold_misses_cheap() {
    // Unique stream: the hybrid node's bloom filter answers "absent"
    // from RAM; per-op cost must stay near CPU cost, far from a flash
    // read per op.
    let config = NodeConfig {
        // Realistically proportioned store: the write buffer is large
        // enough that bucket flushes carry near-page batches.
        flash: shhc_flash::FlashConfig {
            latency: shhc_flash::FlashLatency::default(),
            write_buffer: 8192,
            buckets: 64,
            ..shhc_flash::FlashConfig::medium_test()
        },
        ..NodeConfig::small_test()
    };
    let mut node = ShhcNodeIndex::new(HybridHashNode::new(NodeId::new(1), config).unwrap());
    let trace = presets::time_machine().scaled(1024).generate();
    for fp in &trace.fingerprints {
        node.lookup_insert(*fp).unwrap();
    }
    let per_op = node.busy().as_nanos() / trace.len() as u64;
    // A flash read is 25 µs; with delayed writes the amortized program
    // cost per record is a few µs. Without the bloom filter every cold
    // miss would additionally pay ≥25 µs of probe reads.
    assert!(
        per_op < 20_000,
        "per-op cost {per_op} ns suggests bloom is not skipping SSD probes"
    );
}
