//! Integration tests for bounded admission and the front-end tier:
//! shed tickets resolve (never hang), blocking admission loses nothing,
//! fair shedding isolates tenants, and the backup service survives a
//! saturated tier through its retry path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use shhc::{
    AdmissionPolicy, BackupService, ClusterConfig, FrontendConfig, FrontendTier, IngestModel,
    SharedFrontend, ShhcCluster,
};
use shhc_chunking::FixedChunker;
use shhc_storage::MemChunkStore;
use shhc_types::{Fingerprint, StreamId};

fn fp(v: u64) -> Fingerprint {
    Fingerprint::from_u64(v)
}

/// Under deliberate overload of a shedding tier, every ticket — admitted
/// or shed — must resolve; a shed submission fails fast as `Overloaded`
/// and an admitted one gets its answer. Nothing may hang.
#[test]
fn shed_tickets_always_resolve_under_concurrent_overload() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let config = FrontendConfig::new(16, Duration::from_millis(2))
        .admission(AdmissionPolicy::Shed { max_pending: 32 })
        .ingest(IngestModel::per_sec(2_000.0));
    let tier = FrontendTier::new(cluster.clone(), 2, &config);

    let threads = 4u64;
    let per_thread = 200u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let shed_total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let tier = tier.clone();
        let barrier = Arc::clone(&barrier);
        let shed_total = Arc::clone(&shed_total);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            // Open loop: submit the whole burst without waiting on any
            // ticket, so the offered rate is bounded by nothing but the
            // thread — the shape that actually overloads the gate.
            let mut admitted = Vec::new();
            for i in 0..per_thread {
                let (ticket, shed) = tier.submit_from(Some(t as u32), fp(t * per_thread + i));
                if shed {
                    shed_total.fetch_add(1, Ordering::Relaxed);
                    // A shed ticket is already resolved — wait() must
                    // return the overload error immediately.
                    assert!(ticket.wait().unwrap_err().is_overload());
                } else {
                    admitted.push(ticket);
                }
            }
            let mut answered = 0u64;
            for ticket in admitted {
                // Admitted: the age flusher bounds the wait.
                let answer = ticket
                    .wait_timeout(Duration::from_secs(30))
                    .expect("admitted ticket must be answered");
                assert!(!answer.existed, "disjoint fingerprints are all new");
                answered += 1;
            }
            answered
        }));
    }
    let answered: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let shed = shed_total.load(Ordering::Relaxed);
    assert_eq!(answered + shed, threads * per_thread, "no submission lost");
    assert!(
        shed > 0,
        "4 unpaced threads against a 2 k/s ingest model must shed"
    );
    let stats = tier.stats();
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.admitted, answered);
    cluster.shutdown().unwrap();
}

/// Blocking admission is lossless: K producers hammering a front-end
/// whose bound is far below the offered burst must have every submission
/// admitted (after waiting) and answered — the gate converts overload
/// into backpressure, never into loss.
#[test]
fn block_admission_loses_nothing_under_producer_threads() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let config = FrontendConfig::new(4, Duration::from_millis(2))
        .admission(AdmissionPolicy::Block { max_pending: 8 });
    let fe = SharedFrontend::with_config(cluster.clone(), config);

    let threads = 4u64;
    let per_thread = 100u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let mut handles = Vec::new();
    for t in 0..threads {
        let fe = fe.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut tickets = Vec::new();
            for i in 0..per_thread {
                let (ticket, shed) = fe.submit_from(Some(t as u32), fp(t * per_thread + i));
                assert!(!shed, "Block policy never sheds");
                tickets.push(ticket);
            }
            for ticket in tickets {
                let answer = ticket
                    .wait_timeout(Duration::from_secs(30))
                    .expect("blocked-then-admitted ticket must be answered");
                assert!(!answer.existed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = fe.stats();
    assert_eq!(stats.admitted, threads * per_thread);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.outstanding, 0, "everything drained");
    // The bound really was hit: producers had to wait at least once.
    assert!(
        stats.blocked > 0,
        "400 submissions through an 8-deep gate must block sometimes"
    );
    cluster.shutdown().unwrap();
}

/// Fair shedding isolates tenants: a noisy tenant offering 10× its quota
/// in one burst is shed back to its quota, while a quiet tenant staying
/// inside its own quota is admitted at a ≥ 0.9 rate.
#[test]
fn fair_shed_protects_quiet_tenant_from_noisy_one() {
    let quota = 64u64;
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    // Batch size above everything submitted and a long age limit: the
    // queue holds the burst while both tenants race the gate.
    let config =
        FrontendConfig::new(4096, Duration::from_secs(60)).admission(AdmissionPolicy::FairShed {
            max_pending: 4 * quota as usize,
            per_tenant_quota: quota as usize,
        });
    let fe = SharedFrontend::with_config(cluster.clone(), config);

    let barrier = Arc::new(Barrier::new(2));
    let noisy = {
        let fe = fe.clone();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            let mut admitted = 0u64;
            for i in 0..10 * quota {
                let (_, shed) = fe.submit_from(Some(1), fp(10_000 + i));
                admitted += u64::from(!shed);
            }
            admitted
        })
    };
    let quiet = {
        let fe = fe.clone();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            let mut admitted = 0u64;
            // The quiet tenant offers only half its quota, paced.
            for i in 0..quota / 2 {
                let (_, shed) = fe.submit_from(Some(2), fp(20_000 + i));
                admitted += u64::from(!shed);
                std::thread::sleep(Duration::from_micros(200));
            }
            admitted
        })
    };
    let noisy_admitted = noisy.join().unwrap();
    let quiet_admitted = quiet.join().unwrap();

    let quiet_rate = quiet_admitted as f64 / (quota / 2) as f64;
    assert!(
        quiet_rate >= 0.9,
        "quiet tenant admitted {quiet_admitted}/{} ({quiet_rate:.2}); \
         the noisy tenant starved it",
        quota / 2
    );
    assert!(
        noisy_admitted <= quota,
        "noisy tenant admitted {noisy_admitted}, above its quota of {quota}"
    );
    let stats = fe.stats();
    assert!(stats.shed >= 9 * quota, "the noisy excess must be shed");
    assert!(
        stats.shed_by_tenant >= 9 * quota,
        "noisy tenant's sheds are quota sheds, not global-bound sheds"
    );
    fe.flush().unwrap();
    cluster.shutdown().unwrap();
}

/// Power-of-two-choices routing never changes answers: disjoint
/// fingerprints submitted concurrently through a tier all come back
/// fresh, and resubmitting the same population reads back as duplicates
/// regardless of which front-end each submission landed on.
#[test]
fn tier_answers_stay_correct_across_routing() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3)).unwrap();
    let config = FrontendConfig::new(16, Duration::from_millis(2));
    let tier = FrontendTier::new(cluster.clone(), 3, &config);

    let threads = 3u64;
    let per_thread = 150u64;
    for round in 0..2u32 {
        let barrier = Arc::new(Barrier::new(threads as usize));
        let mut handles = Vec::new();
        for t in 0..threads {
            let tier = tier.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let tickets: Vec<_> = (0..per_thread)
                    .map(|i| tier.submit(fp(t * per_thread + i)))
                    .collect();
                for ticket in tickets {
                    let answer = ticket.wait_timeout(Duration::from_secs(30)).unwrap();
                    assert_eq!(
                        answer.existed,
                        round == 1,
                        "round {round}: wrong dedup answer"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        tier.flush_all().unwrap();
    }
    assert_eq!(
        cluster.stats().unwrap().total_entries(),
        threads * per_thread,
        "second round deduplicated everything"
    );
    cluster.shutdown().unwrap();
}

/// End to end: concurrent backups through a deliberately saturated
/// FairShed tier (tight quotas + a slow ingest model) must all complete
/// via the service's retry-on-shed path and restore byte-exactly.
#[test]
fn service_backups_survive_a_saturated_fair_shed_tier() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let config = FrontendConfig::new(32, Duration::from_millis(20))
        .admission(AdmissionPolicy::FairShed {
            max_pending: 64,
            per_tenant_quota: 24,
        })
        .ingest(IngestModel::per_sec(4_000.0));
    let tier = FrontendTier::new(cluster, 2, &config);
    let svc = BackupService::with_tier(tier, FixedChunker::new(128), MemChunkStore::new(1 << 20));

    let mut handles = Vec::new();
    for s in 0..4u32 {
        let svc = svc.clone();
        handles.push(std::thread::spawn(move || {
            // Distinct constant-block data per stream: cheap to build,
            // dedups internally, disjoint across streams.
            let data: Vec<u8> = (0..6400)
                .map(|i| (i / 128 + 50 * s as usize) as u8)
                .collect();
            let report = svc.backup(StreamId::new(s), &data).unwrap();
            assert_eq!(report.total_chunks, 50);
            assert_eq!(svc.restore(&report.manifest).unwrap(), data);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = svc.tier().stats();
    assert_eq!(stats.outstanding, 0, "all lookups drained");
    svc.cluster().clone().shutdown().unwrap();
}
