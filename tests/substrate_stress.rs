//! Longer-running cross-substrate stress tests: the kind of sustained,
//! churn-heavy workloads that shake out interaction bugs between the
//! cache, bloom filter, flash store and FTL.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shhc_cache::{Cache, LruCache};
use shhc_flash::{FlashConfig, FlashStore};
use shhc_node::{CachePolicy, HybridHashNode, NodeConfig};
use shhc_ring::{load_distribution, ConsistentHashRing};
use shhc_types::{Fingerprint, NodeId};
use shhc_workload::presets;

#[test]
fn flash_store_sustains_heavy_churn() {
    let mut store = FlashStore::new(FlashConfig::medium_test()).unwrap();
    let mut model = std::collections::HashMap::new();
    let mut rng = StdRng::seed_from_u64(42);
    // 60k operations over a 5k-key space: plenty of overwrites, deletes
    // and GC pressure.
    for i in 0..60_000u64 {
        let key = rng.gen_range(0..5_000u64);
        let fp = Fingerprint::from_u64(key);
        match rng.gen_range(0..10) {
            0..=6 => {
                store.put(fp, i).unwrap();
                model.insert(key, i);
            }
            7 => {
                store.delete(fp).unwrap();
                model.remove(&key);
            }
            8 => {
                store.flush().unwrap();
            }
            _ => {
                assert_eq!(store.get(fp).unwrap(), model.get(&key).copied());
            }
        }
    }
    store.flush().unwrap();
    for (k, v) in &model {
        assert_eq!(store.get(Fingerprint::from_u64(*k)).unwrap(), Some(*v));
    }
    // The FTL must have collected garbage during all that churn.
    assert!(store.ftl_stats().gc_runs > 0);
    assert!(store.ftl_stats().write_amplification() >= 1.0);
}

#[test]
fn node_correct_under_every_cache_policy_on_real_traces() {
    let trace = presets::home_dir().scaled(256).generate();
    for policy in [CachePolicy::Lru, CachePolicy::Slru, CachePolicy::TwoQ] {
        let config = NodeConfig {
            cache_policy: policy,
            cache_capacity: 512,
            flash: FlashConfig::medium_test(),
            bloom_expected: 100_000,
            ..NodeConfig::small_test()
        };
        let mut node = HybridHashNode::new(NodeId::new(0), config).unwrap();
        let mut reference = std::collections::HashSet::new();
        for fp in &trace.fingerprints {
            let r = node.lookup_insert(*fp).unwrap();
            assert_eq!(r.existed, reference.contains(fp), "{policy:?}");
            reference.insert(*fp);
        }
        assert_eq!(node.entries(), reference.len() as u64, "{policy:?}");
    }
}

#[test]
fn cache_hit_ratio_tracks_working_set_size() {
    // With a Zipf-like reuse pattern, a bigger cache must hit more.
    let trace = presets::mail_server().scaled(256).generate();
    let mut ratios = Vec::new();
    for capacity in [64usize, 1024, 16_384] {
        let config = NodeConfig {
            cache_capacity: capacity,
            flash: FlashConfig::medium_test(),
            bloom_expected: 300_000,
            ..NodeConfig::small_test()
        };
        let mut node = HybridHashNode::new(NodeId::new(0), config).unwrap();
        for fp in &trace.fingerprints {
            node.lookup_insert(*fp).unwrap();
        }
        let s = node.stats();
        ratios.push(s.ram_hit_ratio());
    }
    assert!(
        ratios[0] < ratios[1] && ratios[1] <= ratios[2],
        "hit ratio must grow with cache size: {ratios:?}"
    );
}

#[test]
fn lru_never_corrupts_under_interleaved_operations() {
    let mut cache: LruCache<u64, u64> = LruCache::new(257);
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = std::collections::HashMap::new();
    for _ in 0..200_000 {
        let k = rng.gen_range(0..1_000u64);
        match rng.gen_range(0..4) {
            0 => {
                cache.insert(k, k * 2);
                model.insert(k, k * 2);
            }
            1 => {
                if let Some(v) = cache.get(&k) {
                    assert_eq!(*v, model[&k]);
                }
            }
            2 => {
                cache.remove(&k);
                model.remove(&k);
            }
            _ => {
                // A cached value must always agree with the model.
                if cache.peek(&k) {
                    assert_eq!(cache.peek_value(&k), model.get(&k));
                }
            }
        }
        assert!(cache.len() <= 257);
    }
}

#[test]
fn ring_balance_improves_with_vnodes_on_sha1_keys() {
    // Using real fingerprint route keys from a generated trace.
    let trace = presets::web_server().scaled(256).generate();
    let keys: Vec<u64> = trace.fingerprints.iter().map(|fp| fp.route_key()).collect();

    let mut spreads = Vec::new();
    for vnodes in [1u32, 16, 256] {
        let ring = ConsistentHashRing::with_nodes(4, vnodes);
        let counts = load_distribution(&ring, keys.iter().copied());
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        spreads.push(max / min.max(1.0));
    }
    assert!(
        spreads[2] < spreads[0],
        "more vnodes must tighten the spread: {spreads:?}"
    );
    assert!(spreads[2] < 1.5, "256 vnodes should be near-balanced");
}

#[test]
fn node_survives_write_buffer_boundary_patterns() {
    // Adversarial pattern: exactly fill the write buffer, then query the
    // just-flushed keys, then refill — exercising the buffer/flash
    // boundary repeatedly.
    let config = NodeConfig::small_test();
    let wb = config.flash.write_buffer;
    let mut node = HybridHashNode::new(NodeId::new(0), config).unwrap();
    for round in 0..20u64 {
        let base = round * wb as u64;
        for i in 0..wb as u64 {
            let r = node.lookup_insert(Fingerprint::from_u64(base + i)).unwrap();
            assert!(!r.existed);
        }
        // Everything from every earlier round must still be found.
        for probe in (0..=round).step_by(3) {
            let fp = Fingerprint::from_u64(probe * wb as u64);
            assert!(node.lookup_insert(fp).unwrap().existed, "round {round}");
        }
    }
}
