//! The restore read path: sequential and pipelined replays must be
//! byte-exact equivalents on both cluster data planes, restores must not
//! starve concurrent backup writers or flush their cache working set,
//! and a failing fingerprint index must only degrade the locate audit —
//! never the restored bytes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use shhc::prelude::*;
use shhc::{BackendKind, DataPlane, NodeId, RestoreConfig};
use shhc_storage::{ChunkStore, StoreStats};
use shhc_types::{ChunkId, Result as ShhcResult};
use shhc_workload::RestoreSpec;

fn service_on(plane: DataPlane, nodes: u32) -> BackupService<FixedChunker, MemChunkStore> {
    let cluster =
        ShhcCluster::spawn(ClusterConfig::small_test(nodes).with_data_plane(plane)).unwrap();
    BackupService::new(
        cluster,
        FixedChunker::new(256),
        MemChunkStore::new(1 << 20),
        32,
    )
}

#[test]
fn restore_flavours_are_byte_exact_on_both_data_planes() {
    let spec = RestoreSpec::open_loop(1, 120).with_chunk_size(256);
    let data = spec.client_data(0);
    for plane in [DataPlane::Sequential, DataPlane::Pipelined] {
        let svc = service_on(plane, 2);
        let report = svc.backup(StreamId::new(1), &data).unwrap();

        let sequential = svc
            .restore_with(&report.manifest, RestoreConfig::new(7, 2))
            .unwrap();
        let pipelined = svc
            .restore_pipelined_with(&report.manifest, RestoreConfig::new(7, 2))
            .unwrap();
        assert_eq!(sequential.data, data, "sequential restore ({plane:?})");
        assert_eq!(pipelined.data, data, "pipelined restore ({plane:?})");
        assert_eq!(svc.restore(&report.manifest).unwrap(), data);
        assert_eq!(svc.restore_pipelined(&report.manifest).unwrap(), data);

        // Every fingerprint was recorded at backup time, so the advisory
        // locate audit finds the whole manifest on both paths.
        for r in [&sequential, &pipelined] {
            assert_eq!(r.chunks, report.manifest.len());
            assert_eq!(r.bytes, data.len() as u64);
            assert_eq!(r.located, r.chunks, "full locate coverage ({plane:?})");
            assert_eq!(r.mismatched, 0);
            assert_eq!(r.skipped, 0);
            assert!(!r.degraded);
            assert!((r.locate_coverage() - 1.0).abs() < 1e-12);
        }
        svc.cluster().clone().shutdown().unwrap();
    }
}

#[test]
fn odd_batch_and_window_shapes_stay_byte_exact() {
    let svc = service_on(DataPlane::Pipelined, 2);
    let spec = RestoreSpec::open_loop(1, 33).with_chunk_size(256);
    let data = spec.client_data(0);
    let report = svc.backup(StreamId::new(9), &data).unwrap();
    for (batch, window) in [(1, 1), (2, 5), (33, 1), (64, 4), (5, 16)] {
        let config = RestoreConfig::new(batch, window);
        assert_eq!(
            svc.restore_with(&report.manifest, config).unwrap().data,
            data,
            "sequential batch={batch} window={window}"
        );
        assert_eq!(
            svc.restore_pipelined_with(&report.manifest, config)
                .unwrap()
                .data,
            data,
            "pipelined batch={batch} window={window}"
        );
    }
    // An empty manifest restores to nothing on both paths.
    let empty = BackupManifest::new(StreamId::new(10));
    assert!(svc.restore(&empty).unwrap().is_empty());
    assert!(svc.restore_pipelined(&empty).unwrap().is_empty());
    svc.cluster().clone().shutdown().unwrap();
}

#[test]
fn concurrent_restores_and_churning_backups_stay_byte_exact() {
    // Two clients replay their manifests (both flavours) while two other
    // sessions churn fresh backups through the same service handle: the
    // replays must come back byte-exact every pass.
    let svc = service_on(DataPlane::Pipelined, 2);
    let spec = RestoreSpec::open_loop(2, 60).with_chunk_size(256);
    let payloads = spec.client_payloads();
    let manifests: Vec<BackupManifest> = payloads
        .iter()
        .enumerate()
        .map(|(c, data)| svc.backup(StreamId::new(c as u32), data).unwrap().manifest)
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for churner in 0..2u64 {
            let svc = svc.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let churn_spec = RestoreSpec::open_loop(2, 24)
                    .with_chunk_size(256)
                    .with_seed(0xC0FF_EE00 + churner);
                let mut round = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let data = churn_spec.client_data(churner as usize);
                    let report = svc
                        .backup(StreamId::new(100 + churner as u32 * 50 + round), &data)
                        .unwrap();
                    svc.delete_backup(&report.manifest).unwrap();
                    round += 1;
                }
            });
        }
        let mut restorers = Vec::new();
        for (c, (manifest, data)) in manifests.iter().zip(&payloads).enumerate() {
            let svc = svc.clone();
            restorers.push(scope.spawn(move || {
                for pass in 0..6 {
                    let restored = if pass % 2 == 0 {
                        svc.restore_pipelined_with(manifest, RestoreConfig::new(8, 3))
                            .unwrap()
                            .data
                    } else {
                        svc.restore_with(manifest, RestoreConfig::new(8, 3))
                            .unwrap()
                            .data
                    };
                    assert_eq!(&restored, data, "client {c} pass {pass}");
                }
            }));
        }
        for r in restorers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    svc.cluster().clone().shutdown().unwrap();
}

/// A store whose reads take real time — long enough that a whole-replay
/// lock hold would visibly starve writers.
struct SlowStore {
    inner: MemChunkStore,
    read_delay: Duration,
}

impl ChunkStore for SlowStore {
    fn put(&mut self, fingerprint: Fingerprint, data: Vec<u8>) -> ShhcResult<ChunkId> {
        self.inner.put(fingerprint, data)
    }
    fn get(&self, id: ChunkId) -> ShhcResult<Vec<u8>> {
        std::thread::sleep(self.read_delay);
        self.inner.get(id)
    }
    fn get_many(&self, ids: &[ChunkId]) -> ShhcResult<Vec<Vec<u8>>> {
        std::thread::sleep(self.read_delay * ids.len() as u32);
        self.inner.get_many(ids)
    }
    fn fingerprint_of(&self, id: ChunkId) -> ShhcResult<Fingerprint> {
        self.inner.fingerprint_of(id)
    }
    fn add_ref(&mut self, id: ChunkId) -> ShhcResult<()> {
        self.inner.add_ref(id)
    }
    fn release(&mut self, id: ChunkId) -> ShhcResult<u32> {
        self.inner.release(id)
    }
    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[test]
fn long_restore_does_not_starve_backup_writers() {
    // Regression for the whole-replay lock hold: with the store read
    // lock scoped per batch, a writer gets in *mid-restore* instead of
    // queueing behind the entire replay.
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let store = SlowStore {
        inner: MemChunkStore::new(1 << 20),
        read_delay: Duration::from_millis(3),
    };
    let svc = BackupService::new(cluster, FixedChunker::new(256), store, 32);

    let spec = RestoreSpec::open_loop(1, 150).with_chunk_size(256);
    let data = spec.client_data(0);
    let manifest = svc.backup(StreamId::new(1), &data).unwrap().manifest;

    let restore_done = Arc::new(AtomicBool::new(false));
    let started = Arc::new(Barrier::new(2));
    std::thread::scope(|scope| {
        {
            let svc = svc.clone();
            let restore_done = Arc::clone(&restore_done);
            let started = Arc::clone(&started);
            scope.spawn(move || {
                started.wait();
                // ≈150 × 3 ms of gated reads, lock released every 4.
                let restored = svc
                    .restore_with(&manifest, RestoreConfig::new(4, 1))
                    .unwrap();
                restore_done.store(true, Ordering::SeqCst);
                assert_eq!(restored.data, data);
            });
        }
        started.wait();
        // Give the replay a head start so the write genuinely contends.
        std::thread::sleep(Duration::from_millis(30));
        let small = RestoreSpec::open_loop(1, 4)
            .with_chunk_size(256)
            .with_seed(77)
            .client_data(0);
        svc.backup(StreamId::new(2), &small).unwrap();
        assert!(
            !restore_done.load(Ordering::SeqCst),
            "backup should complete while the restore is still replaying"
        );
    });
    svc.cluster().clone().shutdown().unwrap();
}

/// Ingest hot-set RAM hit ratio after `rounds` of re-backing-up the hot
/// payload, with an optional full restore of the cold manifest replayed
/// before each round.
enum Interference {
    None,
    Pipelined,
    Sequential,
}

fn hot_set_hit_ratio(interference: Interference) -> f64 {
    // Pin the node shape: the cache-pollution mechanics under test live
    // in the single-backend node cache (reader-pool nodes answer queries
    // from mirrors and never touch it).
    let mut node_config = NodeConfig::small_test();
    node_config.cache_capacity = 256;
    node_config.backend = BackendKind::Single;
    node_config.readers = 0;
    let cluster = ShhcCluster::spawn(ClusterConfig::new(2, node_config)).unwrap();
    let svc = BackupService::new(
        cluster,
        FixedChunker::new(256),
        MemChunkStore::new(1 << 20),
        32,
    );

    // A cold archive much larger than the cache, then a hot payload that
    // fits it comfortably.
    let cold = RestoreSpec::open_loop(1, 1024)
        .with_chunk_size(256)
        .with_redundancy(0.0)
        .client_data(0);
    let hot = RestoreSpec::open_loop(1, 64)
        .with_chunk_size(256)
        .with_redundancy(0.0)
        .with_seed(0x401)
        .client_data(0);
    let cold_manifest = svc.backup(StreamId::new(1), &cold).unwrap().manifest;
    svc.backup(StreamId::new(2), &hot).unwrap();

    for round in 0..3u32 {
        match interference {
            Interference::None => {}
            Interference::Pipelined => {
                let restored = svc.restore_pipelined(&cold_manifest).unwrap();
                assert_eq!(restored, cold);
            }
            Interference::Sequential => {
                let restored = svc.restore(&cold_manifest).unwrap();
                assert_eq!(restored, cold);
            }
        }
        // Re-ingest the hot set: every chunk is a duplicate, counted as
        // a RAM or flash hit depending on where the restore left it.
        svc.backup(StreamId::new(10 + round), &hot).unwrap();
    }

    let stats = svc.cluster().stats().unwrap();
    let (ram, ssd) = stats.nodes.iter().fold((0u64, 0u64), |(r, s), n| {
        (r + n.stats.ram_hits, s + n.stats.ssd_hits)
    });
    svc.cluster().clone().shutdown().unwrap();
    assert!(ram + ssd > 0, "hot re-ingest must classify duplicates");
    ram as f64 / (ram + ssd) as f64
}

#[test]
fn bypass_restore_preserves_ingest_hit_rate() {
    let undisturbed = hot_set_hit_ratio(Interference::None);
    let with_pipelined = hot_set_hit_ratio(Interference::Pipelined);
    let with_sequential = hot_set_hit_ratio(Interference::Sequential);

    // The scan-resistant (Bypass) restore leaves the ingest working set
    // resident: at least 90 % of the undisturbed hit rate.
    assert!(
        with_pipelined >= 0.9 * undisturbed,
        "pipelined restore flushed the hot set: {with_pipelined:.3} vs {undisturbed:.3}"
    );
    // The sequential baseline reads through the cache with Normal
    // admission — the pathology the Bypass hint exists to avoid.
    assert!(
        with_sequential < with_pipelined,
        "expected normal-admission restore to pollute the cache: \
         sequential {with_sequential:.3} vs pipelined {with_pipelined:.3}"
    );
}

#[test]
fn dead_index_node_degrades_audit_not_data() {
    let svc = service_on(DataPlane::Pipelined, 3);
    let spec = RestoreSpec::open_loop(1, 80).with_chunk_size(256);
    let data = spec.client_data(0);
    let manifest = svc.backup(StreamId::new(1), &data).unwrap().manifest;

    svc.cluster().kill_node(NodeId::new(1)).unwrap();

    for flavour in ["sequential", "pipelined"] {
        let report = if flavour == "sequential" {
            svc.restore_with(&manifest, RestoreConfig::new(8, 2))
        } else {
            svc.restore_pipelined_with(&manifest, RestoreConfig::new(8, 2))
        }
        .unwrap();
        assert_eq!(report.data, data, "{flavour} restore survives a dead node");
        assert!(
            report.degraded,
            "{flavour} locate audit must flag the dead node"
        );
        assert!(report.skipped > 0, "{flavour} skips locates after failure");
        assert!(
            report.located + report.mismatched + report.skipped == report.chunks,
            "{flavour} audit accounts for every entry"
        );
    }
    svc.cluster().clone().shutdown().unwrap();
}
