//! End-to-end backup/restore integration: every chunker × every store,
//! byte-exact restores, and dedup accounting that matches the workload.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use shhc::prelude::*;
use shhc::{BackupService, ClusterConfig, ShhcCluster};
use shhc_chunking::GearChunker;

fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn run_round_trip<C: Chunker>(chunker: C, data: &[u8]) {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3)).unwrap();
    let service = BackupService::new(cluster.clone(), chunker, MemChunkStore::new(1 << 20), 64);
    let report = service.backup(StreamId::new(1), data).unwrap();
    assert_eq!(report.logical_bytes as usize, data.len());
    let restored = service.restore(&report.manifest).unwrap();
    assert_eq!(restored, data, "restore must be byte-identical");
    cluster.shutdown().unwrap();
}

#[test]
fn round_trip_fixed_chunker() {
    run_round_trip(FixedChunker::new(512), &random_data(100_000, 1));
}

#[test]
fn round_trip_rabin_chunker() {
    run_round_trip(RabinChunker::new(256, 1024, 8192), &random_data(100_000, 2));
}

#[test]
fn round_trip_gear_chunker() {
    run_round_trip(GearChunker::new(256, 1024, 8192), &random_data(100_000, 3));
}

#[test]
fn round_trip_empty_and_tiny_inputs() {
    for len in [0usize, 1, 7, 511, 512, 513] {
        run_round_trip(FixedChunker::new(512), &random_data(len, len as u64));
    }
}

#[test]
fn file_store_round_trip_with_reopen() {
    let dir = std::env::temp_dir().join(format!("shhc_e2e_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let data = random_data(50_000, 4);

    let manifest = {
        let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
        let store = FileChunkStore::open(&dir, 1 << 20).unwrap();
        let service = BackupService::new(cluster.clone(), FixedChunker::new(1024), store, 32);
        let report = service.backup(StreamId::new(1), &data).unwrap();
        cluster.shutdown().unwrap();
        report.manifest
    };

    // A fresh process (store reopened from disk) can still restore.
    let store = FileChunkStore::open(&dir, 1 << 20).unwrap();
    let restored = restore(&store, &manifest).unwrap();
    assert_eq!(restored, data);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dedup_ratio_tracks_workload_redundancy() {
    // Build a dataset whose chunk stream is ~40% duplicates and verify
    // the service's accounting agrees.
    let chunk = 1024usize;
    let unique: Vec<Vec<u8>> = (0..1000).map(|i| random_data(chunk, 100 + i)).collect();
    let mut rng = StdRng::seed_from_u64(9);
    let mut stream_chunks: Vec<usize> = Vec::new();
    let mut next_unique = 0usize;
    let mut data = Vec::new();
    for i in 0..1000usize {
        let idx = if i > 0 && rng.gen_bool(0.4) {
            stream_chunks[rng.gen_range(0..stream_chunks.len())]
        } else {
            next_unique += 1;
            next_unique - 1
        };
        stream_chunks.push(idx);
        data.extend_from_slice(&unique[idx]);
    }

    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(4)).unwrap();
    let service = BackupService::new(
        cluster.clone(),
        FixedChunker::new(chunk),
        MemChunkStore::new(1 << 22),
        128,
    );
    let report = service.backup(StreamId::new(1), &data).unwrap();
    let measured = report.duplicate_fraction();
    assert!(
        (0.3..0.55).contains(&measured),
        "expected ~0.4 duplicate fraction, measured {measured}"
    );
    assert_eq!(service.restore(&report.manifest).unwrap(), data);
    cluster.shutdown().unwrap();
}

#[test]
fn many_streams_share_one_cluster() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let service = BackupService::new(
        cluster.clone(),
        FixedChunker::new(512),
        MemChunkStore::new(1 << 22),
        64,
    );
    let base = random_data(20_000, 11);
    let mut manifests = Vec::new();
    for s in 0..5u32 {
        // Each stream shares 75% of its content with the base.
        let mut data = base.clone();
        let tail = random_data(5_000, 200 + s as u64);
        data.extend_from_slice(&tail);
        let report = service.backup(StreamId::new(s), &data).unwrap();
        if s > 0 {
            assert!(
                report.duplicate_fraction() > 0.7,
                "stream {s} should dedup against stream 0"
            );
        }
        manifests.push((report.manifest, data));
    }
    for (manifest, data) in &manifests {
        assert_eq!(&service.restore(manifest).unwrap(), data);
    }
    cluster.shutdown().unwrap();
}
