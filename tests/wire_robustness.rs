//! Wire-protocol robustness: a hash node is a network service, so its
//! decoder must never panic — on truncation, corruption, or arbitrary
//! garbage — and every valid frame must survive a real cross-thread
//! transport hop.

use proptest::prelude::*;
use shhc_net::{decode, duplex, encode, Frame};
use shhc_types::{Admission, Fingerprint, StreamId};

fn arb_frame() -> impl Strategy<Value = Frame> {
    let fps = proptest::collection::vec(any::<u64>(), 0..64)
        .prop_map(|v| v.into_iter().map(Fingerprint::from_u64).collect::<Vec<_>>());
    prop_oneof![
        (any::<u64>(), any::<u32>(), fps.clone()).prop_map(|(c, s, f)| {
            Frame::LookupInsertReq {
                correlation: c,
                stream: StreamId::new(s),
                fingerprints: f,
            }
        }),
        (any::<u64>(), any::<bool>(), fps.clone()).prop_map(|(c, b, f)| Frame::QueryReq {
            correlation: c,
            admission: if b {
                Admission::Bypass
            } else {
                Admission::Normal
            },
            fingerprints: f,
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<bool>(), 0..64)
        )
            .prop_map(|(c, e)| {
                let hits = e.iter().filter(|x| **x).count() as u64;
                Frame::LookupResp {
                    correlation: c,
                    exists: e,
                    values: (0..hits).collect(),
                }
            }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32)
        )
            .prop_map(|(c, pairs)| Frame::RecordReq {
                correlation: c,
                pairs: pairs
                    .into_iter()
                    .map(|(k, v)| (Fingerprint::from_u64(k), v))
                    .collect(),
            }),
        (any::<u64>(), fps).prop_map(|(c, f)| Frame::RemoveReq {
            correlation: c,
            fingerprints: f,
        }),
        any::<u64>().prop_map(|c| Frame::Ping { correlation: c }),
        any::<u64>().prop_map(|c| Frame::Pong { correlation: c }),
        (any::<u64>(), "[ -~]{0,64}").prop_map(|(c, m)| Frame::Error {
            correlation: c,
            message: m,
        }),
    ]
}

proptest! {
    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // Ok or Err, never a panic
    }

    /// Every frame round-trips through encode/decode.
    #[test]
    fn all_frames_round_trip(frame in arb_frame()) {
        let encoded = encode(&frame);
        prop_assert_eq!(decode(&encoded).unwrap(), frame);
    }

    /// Single-bit corruption is either detected (Err) or decodes to a
    /// frame — but never panics and never decodes to the original frame
    /// claiming a *different* payload length class silently growing.
    #[test]
    fn bit_flips_never_panic(frame in arb_frame(), byte_idx in 0usize..4096, bit in 0u8..8) {
        let mut bytes = encode(&frame).to_vec();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = decode(&bytes); // must not panic
    }

    /// Concatenated frame prefixes (length mismatch) are rejected.
    #[test]
    fn trailing_bytes_rejected(frame in arb_frame(), extra in 1usize..16) {
        let mut bytes = encode(&frame).to_vec();
        bytes.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert!(decode(&bytes).is_err());
    }
}

#[test]
fn frames_survive_cross_thread_transport() {
    let (client, server) = duplex();
    let echo = std::thread::spawn(move || {
        // Echo frames back until the client hangs up.
        while let Ok(bytes) = server.recv() {
            let frame = decode(&bytes).expect("server decodes");
            server.send(encode(&frame)).expect("server sends");
        }
    });

    for i in 0..100u64 {
        let frame = Frame::LookupInsertReq {
            correlation: i,
            stream: StreamId::new(1),
            fingerprints: (0..i % 40).map(Fingerprint::from_u64).collect(),
        };
        client.send(encode(&frame)).expect("client sends");
        let reply = decode(&client.recv().expect("client receives")).expect("client decodes");
        assert_eq!(reply, frame);
    }
    drop(client);
    echo.join().expect("echo thread");
}

#[test]
fn empty_and_header_only_inputs() {
    assert!(decode(&[]).is_err());
    assert!(decode(&[0]).is_err());
    assert!(decode(&[0, 0, 0, 0]).is_err());
    // A length prefix of zero with nothing after it.
    assert!(decode(&[0, 0, 0, 0, 1]).is_err());
}
