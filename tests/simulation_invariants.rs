//! Invariants of the virtual-time cluster and the Figure-1 simulator,
//! driven with the real Table I workloads.

use shhc::motivation::{execution_time, sweep, MotivationConfig};
use shhc::{SimCluster, SimClusterConfig};
use shhc_flash::FlashConfig;
use shhc_types::Nanos;
use shhc_workload::{characterize, mix, presets};

fn sim_config(nodes: u32, batch: usize) -> SimClusterConfig {
    let mut config = SimClusterConfig::paper_scale(nodes, batch);
    config.node_config.flash = FlashConfig::medium_test();
    config.node_config.cache_capacity = 8192;
    config.node_config.bloom_expected = 300_000;
    config
}

fn mixed_clients(scale: usize) -> Vec<Vec<shhc_types::Fingerprint>> {
    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(scale).generate())
        .collect();
    let stream = mix(&traces, 3);
    let half = stream.len() / 2;
    vec![stream[..half].to_vec(), stream[half..].to_vec()]
}

#[test]
fn entries_conserve_unique_fingerprints() {
    let clients = mixed_clients(512);
    let unique = {
        let all: Vec<_> = clients.iter().flatten().copied().collect();
        characterize(&all).unique as u64
    };
    let mut sim = SimCluster::new(sim_config(4, 128)).unwrap();
    let report = sim.run(&clients).unwrap();
    assert_eq!(
        report.per_node_entries.iter().sum::<u64>(),
        unique,
        "every unique fingerprint stored exactly once"
    );
}

#[test]
fn throughput_scales_with_nodes_on_real_mix() {
    let clients = mixed_clients(512);
    let mut throughputs = Vec::new();
    for nodes in [1u32, 2, 4] {
        let mut sim = SimCluster::new(sim_config(nodes, 128)).unwrap();
        throughputs.push(sim.run(&clients).unwrap().throughput());
    }
    assert!(
        throughputs[2] > throughputs[0] * 1.8,
        "4 nodes should be ≳2x of 1 node: {throughputs:?}"
    );
}

#[test]
fn batch_one_is_an_order_of_magnitude_slower() {
    let clients = mixed_clients(1024);
    let mut sim1 = SimCluster::new(sim_config(2, 1)).unwrap();
    let t1 = sim1.run(&clients).unwrap().throughput();
    let mut sim128 = SimCluster::new(sim_config(2, 128)).unwrap();
    let t128 = sim128.run(&clients).unwrap().throughput();
    assert!(
        t128 / t1 > 5.0,
        "paper reports ~10x for batching; measured {:.1}x",
        t128 / t1
    );
}

#[test]
fn batch_latency_grows_with_batch_size() {
    let clients = mixed_clients(1024);
    let mut lat = Vec::new();
    for batch in [16usize, 256, 2048] {
        let mut sim = SimCluster::new(sim_config(2, batch)).unwrap();
        lat.push(sim.run(&clients).unwrap().batch_latency.mean);
    }
    assert!(
        lat[0] < lat[1] && lat[1] < lat[2],
        "bigger batches must wait longer: {lat:?}"
    );
}

#[test]
fn redundant_workloads_lean_on_the_cache() {
    // Mail server (85% redundant, short distances after scaling) should
    // show a high RAM-hit ratio; time machine (17%, huge distances)
    // should not.
    let mail = presets::mail_server().scaled(512).generate();
    let mut sim = SimCluster::new(sim_config(1, 128)).unwrap();
    let report = sim.run(&[mail.fingerprints]).unwrap();
    let stats = &report.node_stats[0];
    assert!(
        stats.ram_hits + stats.ssd_hits > stats.inserted,
        "mail server is duplicate-dominated"
    );
}

#[test]
fn figure1_shape_holds_under_the_kernel() {
    // Execution time flat at low rate, then hyperbolic in node count at
    // high rate.
    let base = MotivationConfig {
        total_requests: 30_000,
        ..MotivationConfig::default()
    };
    let grid = sweep(&[1, 2, 4, 8, 16], &[20_000.0, 100_000.0], base);
    // At 20k req/s: every size within 15% of 1.5 s.
    for p in grid.iter().filter(|p| p.rate_per_sec < 50_000.0) {
        let t = p.execution_time.as_secs_f64();
        assert!((1.2..1.8).contains(&t), "nodes={} t={t}", p.nodes);
    }
    // At 100k req/s: strictly improving up to 4 nodes.
    let hi: Vec<f64> = grid
        .iter()
        .filter(|p| p.rate_per_sec > 50_000.0)
        .map(|p| p.execution_time.as_secs_f64())
        .collect();
    assert!(
        hi[0] > hi[1] && hi[1] > hi[2],
        "no scaling at high rate: {hi:?}"
    );
}

#[test]
fn service_time_sensitivity() {
    // Faster nodes finish sooner when saturated.
    let slow = execution_time(MotivationConfig {
        nodes: 1,
        rate_per_sec: 100_000.0,
        total_requests: 20_000,
        mean_service: Nanos::from_micros(64),
        ..MotivationConfig::default()
    });
    let fast = execution_time(MotivationConfig {
        nodes: 1,
        rate_per_sec: 100_000.0,
        total_requests: 20_000,
        mean_service: Nanos::from_micros(16),
        ..MotivationConfig::default()
    });
    assert!(slow.as_secs_f64() > 2.5 * fast.as_secs_f64());
}
