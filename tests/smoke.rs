//! Smoke gate: the `quickstart` example's end-to-end flow must run to
//! completion, and the facade crate's root re-exports must stay wired.
//!
//! CI additionally executes `cargo run --example quickstart`; this test
//! keeps the same pipeline under `cargo test -q` so a tier-1 run alone
//! catches a broken quick-start path.

use shhc::prelude::*;

/// Mirrors examples/quickstart.rs: backup twice, restore, verify.
#[test]
fn quickstart_flow_runs_to_completion() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(4)).expect("spawn cluster");
    let store = MemChunkStore::new(4 * 1024 * 1024);
    let service = BackupService::new(cluster.clone(), FixedChunker::new(4096), store, 128);

    let data: Vec<u8> = (0..512 * 1024u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
        .collect();

    let first = service
        .backup(StreamId::new(1), &data)
        .expect("first backup");
    assert_eq!(first.duplicate_chunks, 0, "fresh data must not deduplicate");
    assert_eq!(first.new_chunks, first.total_chunks);

    let second = service
        .backup(StreamId::new(2), &data)
        .expect("second backup");
    assert_eq!(
        second.new_chunks, 0,
        "identical data must fully deduplicate"
    );
    assert_eq!(second.duplicate_chunks, second.total_chunks);

    let restored = service.restore(&second.manifest).expect("restore");
    assert_eq!(restored, data, "restore must be byte-identical");

    cluster.shutdown().expect("shutdown");
}

/// The facade crate re-exports each layer; spot-check the wiring.
#[test]
fn facade_reexports_are_wired() {
    let fp = shhc_repro::types::Fingerprint::from_u64(42);
    assert_eq!(fp.to_hex().len(), 40);
    assert_eq!(
        shhc_repro::hash::fnv1a64(b"shhc"),
        shhc_hash::fnv1a64(b"shhc")
    );

    let cluster =
        shhc_repro::ShhcCluster::spawn(shhc_repro::ClusterConfig::small_test(2)).expect("spawn");
    assert_eq!(
        cluster.lookup_insert_batch(&[fp]).expect("lookup"),
        vec![false]
    );
    cluster.shutdown().expect("shutdown");
}
