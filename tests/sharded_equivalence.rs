//! Sharded-node equivalence and head-of-line-blocking suite.
//!
//! A multi-core [`shhc::ShardedNode`] must be a pure performance change:
//! byte-identical answers to the single-threaded `HybridHashNode` for
//! every operation, on both data planes, through membership changes —
//! plus the property the sharding exists for: a small frame queued
//! behind a deep frame is answered in ≈ its own service time instead of
//! waiting for the deep frame to drain.

use std::time::{Duration, Instant};

use shhc::{ClusterConfig, DataPlane, NodeConfig, ShardRouter, ShhcCluster};
use shhc_types::Fingerprint;

/// Deterministic fingerprints spread over the routing-key space.
fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

/// A fingerprint guaranteed to route to shard `k` of `of` on every node
/// (shards are contiguous routing-key slices).
fn fp_in_shard(k: u32, of: u32, i: u64) -> Fingerprint {
    let lo = ((u128::from(k) << 64).div_ceil(u128::from(of))) as u64;
    let fp = Fingerprint::from_u64(lo + i);
    assert_eq!(ShardRouter::new(of).shard_of(&fp), k as usize);
    fp
}

fn config(nodes: u32, shards: u32, plane: DataPlane) -> ClusterConfig {
    let mut node_config = NodeConfig::small_test();
    node_config.flash = shhc_flash::FlashConfig::medium_test();
    node_config.cache_capacity = 512;
    node_config.bloom_expected = 100_000;
    node_config.shards = shards;
    ClusterConfig::new(nodes, node_config)
        .with_data_plane(plane)
        .with_migration_chunk(48)
}

/// Drives the same randomized lookup/query/record/remove interleaving
/// through a single-threaded and a sharded cluster and asserts every
/// answer is identical.
fn assert_equivalent_traffic(shards: u32, plane: DataPlane) {
    let baseline = ShhcCluster::spawn(config(3, 1, plane)).unwrap();
    let sharded = ShhcCluster::spawn(config(3, shards, plane)).unwrap();
    let universe = fps(0..2_000);
    // A seed-free deterministic schedule: op kind cycles with the round,
    // batches revisit earlier keys so hits, misses and in-frame
    // duplicates all occur.
    for round in 0..12u64 {
        let start = (round * 113) as usize % 1_200;
        let mut batch: Vec<Fingerprint> = universe[start..start + 160].to_vec();
        let dups: Vec<Fingerprint> = batch[..10].to_vec();
        batch.extend(dups); // in-frame duplicates
        match round % 4 {
            0 | 1 => {
                let a = baseline.lookup_insert_batch_values(&batch).unwrap();
                let b = sharded.lookup_insert_batch_values(&batch).unwrap();
                assert_eq!(a, b, "lookup diverged (S={shards}, round {round})");
            }
            2 => {
                let a = baseline.query_batch(&batch).unwrap();
                let b = sharded.query_batch(&batch).unwrap();
                assert_eq!(a, b, "query diverged (S={shards}, round {round})");
                let pairs: Vec<(Fingerprint, u64)> = batch
                    .iter()
                    .take(40)
                    .enumerate()
                    .map(|(i, fp)| (*fp, round * 1_000 + i as u64))
                    .collect();
                baseline.record_batch(&pairs).unwrap();
                sharded.record_batch(&pairs).unwrap();
            }
            _ => {
                let doomed: Vec<Fingerprint> = batch.iter().step_by(7).copied().collect();
                baseline.remove_batch(&doomed).unwrap();
                sharded.remove_batch(&doomed).unwrap();
                let a = baseline.query_batch(&batch).unwrap();
                let b = sharded.query_batch(&batch).unwrap();
                assert_eq!(a, b, "post-remove query diverged (S={shards})");
            }
        }
    }
    let a = baseline.stats().unwrap();
    let b = sharded.stats().unwrap();
    assert_eq!(a.total_entries(), b.total_entries());
    assert_eq!(
        b.nodes.iter().map(|n| n.shards).max(),
        Some(shards.max(1)),
        "snapshots must report the shard count"
    );
    baseline.shutdown().unwrap();
    sharded.shutdown().unwrap();
}

#[test]
fn sharded_matches_single_threaded_pipelined() {
    for shards in [2, 4, 8] {
        assert_equivalent_traffic(shards, DataPlane::Pipelined);
    }
}

#[test]
fn sharded_matches_single_threaded_sequential_plane() {
    for shards in [3, 4] {
        assert_equivalent_traffic(shards, DataPlane::Sequential);
    }
}

/// Membership changes (the PR-4 epoch machinery) behave identically on
/// sharded nodes: answers and totals match a single-threaded cluster
/// through join, drain and anti-entropy, on both data planes.
#[test]
fn migration_interleavings_preserve_equivalence() {
    for plane in [DataPlane::Pipelined, DataPlane::Sequential] {
        let baseline = ShhcCluster::spawn(config(2, 1, plane)).unwrap();
        let sharded = ShhcCluster::spawn(config(2, 4, plane)).unwrap();
        let stream = fps(0..3_000);
        for window in stream.chunks(250) {
            let a = baseline.lookup_insert_batch_values(window).unwrap();
            let b = sharded.lookup_insert_batch_values(window).unwrap();
            assert_eq!(a, b);
        }
        // Join: every entry must keep deduplicating afterwards.
        let (_, report_a) = baseline.add_node().unwrap();
        let (_, report_b) = sharded.add_node().unwrap();
        assert!(report_b.moved > 0, "sharded migration must move entries");
        assert_eq!(
            report_a.moved, report_b.moved,
            "identical stores must migrate identical volumes ({plane:?})"
        );
        for window in stream.chunks(250) {
            let a = baseline.lookup_insert_batch_values(window).unwrap();
            let b = sharded.lookup_insert_batch_values(window).unwrap();
            assert_eq!(a, b, "post-join answers diverged ({plane:?})");
            assert!(a.0.iter().all(|e| *e), "join must not lose entries");
        }
        // Drain the first node: verified-empty decommission must work
        // against sharded scan/migrate paths too.
        let report = sharded.drain_node(shhc_types::NodeId::new(0)).unwrap();
        assert_eq!(report.post_scan_entries, 0, "drain must verify empty");
        baseline.drain_node(shhc_types::NodeId::new(0)).unwrap();
        let exists = sharded.lookup_insert_batch(&stream).unwrap();
        assert!(exists.iter().all(|e| *e), "drain must not lose entries");
        // Anti-entropy converges to the same totals.
        baseline.rebalance().unwrap();
        sharded.rebalance().unwrap();
        assert_eq!(
            baseline.stats().unwrap().total_entries(),
            sharded.stats().unwrap().total_entries()
        );
        baseline.shutdown().unwrap();
        sharded.shutdown().unwrap();
    }
}

/// The head-of-line regression the worker pool exists to fix: a 1-
/// fingerprint frame submitted right behind a 48-fingerprint frame is
/// answered in ≈ its own service time on a sharded node (its shard is
/// idle), while the single-threaded baseline demonstrably makes it wait
/// for the whole deep frame.
#[test]
fn small_frame_is_not_blocked_behind_a_deep_frame() {
    let delay = Duration::from_millis(2);
    let deep_len = 48u32;
    let run = |shards: u32| -> (Duration, Duration) {
        let mut node_config = NodeConfig::small_test();
        node_config.shards = shards;
        node_config.service_delay = delay;
        let cluster = ShhcCluster::spawn(ClusterConfig::new(1, node_config)).unwrap();
        // The deep frame occupies shards 0..3 (of 4); the small frame's
        // shard 3 stays idle on the sharded node.
        let deep: Vec<Fingerprint> = (0..deep_len)
            .map(|i| fp_in_shard(i % 3, 4, 10 + u64::from(i)))
            .collect();
        let small = vec![fp_in_shard(3, 4, 1)];
        let deep_cluster = cluster.clone();
        let deep_thread = std::thread::spawn(move || {
            let start = Instant::now();
            deep_cluster.lookup_insert_batch(&deep).unwrap();
            start.elapsed()
        });
        // Let the deep frame reach the node queue first.
        std::thread::sleep(Duration::from_millis(10));
        let start = Instant::now();
        cluster.lookup_insert_batch(&small).unwrap();
        let small_elapsed = start.elapsed();
        let deep_elapsed = deep_thread.join().unwrap();
        cluster.shutdown().unwrap();
        (deep_elapsed, small_elapsed)
    };
    let (deep_base, small_base) = run(1);
    let (deep_sharded, small_sharded) = run(4);
    // Baseline: 48 × 2 ms of service sit ahead of the small frame; even
    // granting generous scheduling slack it must wait out most of it.
    let deep_service = delay * deep_len;
    assert!(
        small_base > deep_service / 2,
        "single-threaded node must make the small frame wait out the deep \
         frame (waited {small_base:?} of {deep_service:?}; deep took {deep_base:?})"
    );
    // Sharded: the small frame's shard is idle — answered in ≈ its own
    // 2 ms service time. 40 ms leaves a 20× margin for CI jitter while
    // staying far below the 86 ms the baseline pays.
    assert!(
        small_sharded < Duration::from_millis(40),
        "sharded node must answer the small frame in ≈ its own service \
         time (took {small_sharded:?}; deep ran {deep_sharded:?})"
    );
    assert!(
        small_sharded * 2 < small_base,
        "sharding must beat the baseline's head-of-line wait \
         ({small_sharded:?} vs {small_base:?})"
    );
}

/// Intra-node parallelism is real wall-clock concurrency: a frame that
/// spreads over all shards finishes in ≈ the largest per-shard share of
/// the service time, not the sum.
#[test]
fn sharded_frame_latency_tracks_share_not_sum() {
    let delay = Duration::from_millis(1);
    let batch = fps(0..96);
    let run = |shards: u32| {
        let mut node_config = NodeConfig::small_test();
        node_config.shards = shards;
        node_config.service_delay = delay;
        let cluster = ShhcCluster::spawn(ClusterConfig::new(1, node_config)).unwrap();
        let start = Instant::now();
        cluster.lookup_insert_batch(&batch).unwrap();
        let elapsed = start.elapsed();
        cluster.shutdown().unwrap();
        elapsed
    };
    let single = run(1);
    let sharded = run(4);
    assert!(
        single >= delay * batch.len() as u32,
        "single-threaded node pays the full sum ({single:?})"
    );
    assert!(
        sharded * 2 < single,
        "4 shards must cut frame latency well below the single-threaded \
         sum ({sharded:?} vs {single:?})"
    );
}
