//! Backend equivalence under randomized interleavings — the node- and
//! cluster-level half of the PR-6 equivalence suite (the crate-level
//! half lives in `shhc-index`'s `model_equivalence` tests).
//!
//! A concurrent mirror backend plus a reader pool must be a pure
//! performance change: every data-plane answer byte-identical to the
//! single-writer baseline, for every backend, on both data planes,
//! under randomized lookup/query/record/remove interleavings.

use proptest::prelude::*;
use shhc::{BackendKind, ClusterConfig, DataPlane, NodeConfig, ShhcCluster};
use shhc_index::Collection;
use shhc_node::HybridHashNode;
use shhc_types::{Fingerprint, NodeId};

/// Spreads a small key domain over the routing-key space so batches
/// cross shard and node boundaries.
fn fp(k: u64) -> Fingerprint {
    Fingerprint::from_u64(k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(Vec<u64>),
    Query(Vec<u64>),
    Record(Vec<(u64, u64)>),
    Remove(Vec<u64>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keys from a small domain so hits, misses, overwrites and in-batch
    // duplicates all occur; the vendored prop_oneof! picks uniformly.
    let keys = proptest::collection::vec(0u64..96, 1..24);
    let pairs = proptest::collection::vec(((0u64..96), any::<u64>()), 1..16);
    prop_oneof![
        keys.clone().prop_map(Op::Lookup),
        keys.clone().prop_map(Op::Query),
        pairs.prop_map(Op::Record),
        keys.prop_map(Op::Remove),
    ]
}

fn node_config(backend: BackendKind, shards: u32, readers: u32) -> NodeConfig {
    NodeConfig::small_test()
        .with_shards(shards)
        .with_backend(backend)
        .with_readers(readers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Node level: a node with a concurrent mirror answers every batch
    /// exactly like the mirror-less baseline, and after any op sequence
    /// the mirror's contents equal the store's scan — the invariant the
    /// reader pool's byte-identical answers rest on.
    #[test]
    fn prop_node_with_mirror_matches_baseline(
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        for backend in [BackendKind::Striped, BackendKind::Snapshot] {
            // A fresh baseline per backend (both nodes mutate as the ops
            // run), pinned to Single explicitly so the SHHC_TEST_BACKEND
            // CI leg cannot redirect it.
            let mut baseline = HybridHashNode::new(
                NodeId::new(0),
                node_config(BackendKind::Single, 1, 0),
            ).unwrap();
            let mut node = HybridHashNode::new(
                NodeId::new(0),
                node_config(backend, 1, 2),
            ).unwrap();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Lookup(keys) => {
                        let batch: Vec<Fingerprint> = keys.iter().map(|&k| fp(k)).collect();
                        let a = baseline.lookup_insert_batch(&batch).unwrap();
                        let b = node.lookup_insert_batch(&batch).unwrap();
                        prop_assert_eq!(&a.exists, &b.exists, "{} exists diverged at op {}", backend, i);
                        prop_assert_eq!(&a.values, &b.values, "{} values diverged at op {}", backend, i);
                    }
                    Op::Query(keys) => {
                        for &k in keys {
                            let a = baseline.query(fp(k)).unwrap();
                            let b = node.query(fp(k)).unwrap();
                            prop_assert_eq!(a.existed, b.existed, "{} query({}) diverged", backend, k);
                            prop_assert_eq!(a.value, b.value, "{} query({}) value diverged", backend, k);
                        }
                    }
                    Op::Record(pairs) => {
                        for &(k, v) in pairs {
                            baseline.record(fp(k), v).unwrap();
                            node.record(fp(k), v).unwrap();
                        }
                    }
                    Op::Remove(keys) => {
                        for &k in keys {
                            baseline.remove(fp(k)).unwrap();
                            node.remove(fp(k)).unwrap();
                        }
                    }
                }
            }
            // The mirror must track the store exactly — every live
            // record, no tombstone ghosts.
            let mut store: Vec<(Fingerprint, u64)> = node.scan().unwrap();
            store.sort_unstable();
            let mirror = node.mirror_index().expect("concurrent backend has a mirror");
            let mut mirrored = mirror.snapshot_entries();
            mirrored.sort_unstable();
            prop_assert_eq!(store, mirrored, "{} mirror diverged from store", backend);
        }
    }
}

/// Drives one randomized-schedule round through baseline and pooled
/// clusters on one data plane and asserts every answer is identical.
fn assert_cluster_equivalence(ops: &[Op], plane: DataPlane, backend: BackendKind, shards: u32) {
    let baseline = ShhcCluster::spawn(
        ClusterConfig::new(2, node_config(BackendKind::Single, 1, 0)).with_data_plane(plane),
    )
    .unwrap();
    let pooled = ShhcCluster::spawn(
        ClusterConfig::new(2, node_config(backend, shards, 3)).with_data_plane(plane),
    )
    .unwrap();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Lookup(keys) => {
                let batch: Vec<Fingerprint> = keys.iter().map(|&k| fp(k)).collect();
                let a = baseline.lookup_insert_batch_values(&batch).unwrap();
                let b = pooled.lookup_insert_batch_values(&batch).unwrap();
                assert_eq!(a, b, "{backend} lookup diverged at op {i} ({plane:?})");
            }
            Op::Query(keys) => {
                let batch: Vec<Fingerprint> = keys.iter().map(|&k| fp(k)).collect();
                let a = baseline.query_batch(&batch).unwrap();
                let b = pooled.query_batch(&batch).unwrap();
                assert_eq!(a, b, "{backend} query diverged at op {i} ({plane:?})");
            }
            Op::Record(pairs) => {
                let batch: Vec<(Fingerprint, u64)> =
                    pairs.iter().map(|&(k, v)| (fp(k), v)).collect();
                baseline.record_batch(&batch).unwrap();
                pooled.record_batch(&batch).unwrap();
            }
            Op::Remove(keys) => {
                let batch: Vec<Fingerprint> = keys.iter().map(|&k| fp(k)).collect();
                baseline.remove_batch(&batch).unwrap();
                pooled.remove_batch(&batch).unwrap();
                let a = baseline.query_batch(&batch).unwrap();
                let b = pooled.query_batch(&batch).unwrap();
                assert_eq!(a, b, "{backend} post-remove query diverged ({plane:?})");
            }
        }
    }
    let a = baseline.stats().unwrap();
    let b = pooled.stats().unwrap();
    assert_eq!(
        a.total_entries(),
        b.total_entries(),
        "{backend} totals diverged"
    );
    if ops
        .iter()
        .any(|op| matches!(op, Op::Query(_) | Op::Remove(_)))
    {
        assert!(
            b.total_pool_queries() > 0,
            "{backend} reader pool must actually serve queries ({plane:?})"
        );
        assert_eq!(
            a.total_pool_queries(),
            0,
            "baseline has no pool to serve from"
        );
    }
    assert_eq!(
        b.nodes.iter().map(|n| n.readers).max(),
        Some(3),
        "snapshots must report the pool size"
    );
    baseline.shutdown().unwrap();
    pooled.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cluster level, pipelined data plane: pooled nodes (single- and
    /// multi-shard) answer randomized traffic exactly like the baseline,
    /// and their pools demonstrably serve the queries.
    #[test]
    fn prop_cluster_backends_match_pipelined(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        assert_cluster_equivalence(&ops, DataPlane::Pipelined, BackendKind::Striped, 1);
        assert_cluster_equivalence(&ops, DataPlane::Pipelined, BackendKind::Snapshot, 2);
    }

    /// Cluster level, sequential data plane: same equivalence on the
    /// paper's original one-request-at-a-time plane.
    #[test]
    fn prop_cluster_backends_match_sequential(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        assert_cluster_equivalence(&ops, DataPlane::Sequential, BackendKind::Snapshot, 1);
        assert_cluster_equivalence(&ops, DataPlane::Sequential, BackendKind::Striped, 2);
    }
}
