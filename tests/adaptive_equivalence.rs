//! Self-tuning equivalence suite.
//!
//! Every knob the PR-8 controllers turn — batch close limits, shard key
//! ranges, per-shard cache capacities — is a *performance* dial. This
//! suite pins down the invariant that makes closed-loop tuning safe to
//! enable by default: the tuned system returns byte-identical answers
//! to the untuned one for the same submission sequence.

use std::time::Duration;

use shhc::{
    AutotuneOptions, ClusterConfig, Durability, LookupAnswer, NodeConfig, SharedFrontend,
    ShhcCluster, TunerConfig,
};
use shhc_types::Fingerprint;
use shhc_workload::SkewSpec;

/// A Zipf-clustered trace: hot ranks map to adjacent routing keys, the
/// worst case for a uniform shard split.
fn zipf_trace(ops: usize, seed: u64) -> Vec<Fingerprint> {
    SkewSpec::zipf_clustered(ops, 4_000, 1.1, seed).fingerprints()
}

/// Drives one front-end through the trace single-threaded, flushing
/// every `wave` submissions, and collects every answer in order.
///
/// The age limit (both the front-end's and the tuner's bounds) is kept
/// huge so every batch is dispatched on *this* thread — inline on a
/// size close or via the explicit flush. Sequential dispatch means each
/// node sees its fingerprints in submission order no matter where the
/// batch boundaries fall, which is exactly why retuning the size limit
/// mid-stream cannot change answers.
fn drive(fe: &SharedFrontend, trace: &[Fingerprint], wave: usize) -> Vec<LookupAnswer> {
    let mut tickets = Vec::with_capacity(trace.len());
    for chunk in trace.chunks(wave) {
        for &fp in chunk {
            tickets.push(fe.submit(fp));
        }
        fe.flush().expect("flush");
    }
    tickets
        .into_iter()
        .map(|t| t.wait().expect("answer"))
        .collect()
}

const FOREVER: Duration = Duration::from_secs(600);

/// Tuner bounds that pin the age limit (so the flusher thread never
/// races the driving thread) while letting the size limit move freely.
fn size_only_tuner(target: Duration) -> TunerConfig {
    TunerConfig {
        min_size: 2,
        max_size: 64,
        min_age: FOREVER,
        max_age: FOREVER,
        target_delay: target,
        interval: Duration::from_millis(1),
    }
}

#[test]
fn adaptive_frontend_answers_match_static() {
    let trace = zipf_trace(600, 11);
    let static_cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let static_fe = SharedFrontend::new(static_cluster.clone(), 8, FOREVER);
    let want = drive(&static_fe, &trace, 50);

    // One tuner pushed toward shrinking (impossible tail target), one
    // toward growing (unreachable tail target): both must agree with
    // the static run answer-for-answer.
    for target in [Duration::ZERO, Duration::from_secs(1)] {
        let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
        let fe = SharedFrontend::with_tuner(cluster.clone(), 8, FOREVER, size_only_tuner(target));
        let got = drive(&fe, &trace, 50);
        assert_eq!(got, want, "tuned answers diverged (target {target:?})");
        cluster.shutdown().unwrap();
    }
    static_cluster.shutdown().unwrap();
}

#[test]
fn autotune_resplit_preserves_answers_and_rebalances() {
    // Volatile four-shard node: the clustered hot set lands entirely on
    // shard 0 under the uniform split.
    let config = NodeConfig::small_test()
        .with_shards(4)
        .with_durability(Durability::Volatile);
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, config)).unwrap();
    let hot: Vec<Fingerprint> = (0..300).map(|i| Fingerprint::from_u64(i * 1000)).collect();
    let (exists0, _) = cluster.lookup_insert_batch_values(&hot).unwrap();
    assert!(exists0.iter().all(|e| !e), "first sighting is new");
    // Second pass returns each entry's allocated value — the baseline
    // the re-split must preserve byte-for-byte.
    let (exists1, values1) = cluster.lookup_insert_batch_values(&hot).unwrap();
    assert!(exists1.iter().all(|e| *e));

    let opts = AutotuneOptions {
        imbalance_threshold: 1.2,
        ..AutotuneOptions::default()
    };
    let report = &cluster.autotune(opts).unwrap()[0];
    assert_eq!(report.shards, 4);
    assert!(
        report.imbalance > 2.0,
        "clustered keys must overload one shard, got {}",
        report.imbalance
    );
    assert!(report.resplit, "volatile node re-splits: {report:?}");
    assert!(report.moved_entries > 0, "hot prefix entries re-home");

    // Same answers after the re-split: every entry still exists with
    // the value it was assigned before.
    let (exists2, values2) = cluster.lookup_insert_batch_values(&hot).unwrap();
    assert!(exists2.iter().all(|e| *e), "entries survive the re-split");
    assert_eq!(values2, values1, "values survive the re-split");

    // The re-split spread the hot range: replaying the trace and tuning
    // again reports a milder imbalance.
    cluster.lookup_insert_batch(&hot).unwrap();
    let report2 = &cluster.autotune(opts).unwrap()[0];
    assert!(
        report2.imbalance < report.imbalance,
        "imbalance must fall after the re-split: {} -> {}",
        report.imbalance,
        report2.imbalance
    );

    // The hot-shard signal is visible through cluster stats.
    let stats = cluster.stats().unwrap();
    assert_eq!(stats.nodes[0].shard_loads.len(), 4);
    assert!(stats.nodes[0].load_imbalance() >= 1.0);
    cluster.shutdown().unwrap();
}

#[test]
fn autotune_declines_resplit_on_wal_nodes() {
    // WAL restart replays into the uniform router, so a durable node
    // must refuse to move entries between shards — while still serving
    // identical answers and still allowed to shift cache capacity.
    let dir = std::env::temp_dir().join(format!("shhc-autotune-wal-{}", std::process::id()));
    let config = NodeConfig::small_test()
        .with_shards(4)
        .with_durability(Durability::wal(&dir));
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, config)).unwrap();
    let hot: Vec<Fingerprint> = (0..200).map(|i| Fingerprint::from_u64(i * 500)).collect();
    cluster.lookup_insert_batch(&hot).unwrap();
    let (_, values1) = cluster.lookup_insert_batch_values(&hot).unwrap();

    let opts = AutotuneOptions {
        imbalance_threshold: 1.2,
        ..AutotuneOptions::default()
    };
    let report = &cluster.autotune(opts).unwrap()[0];
    assert!(!report.resplit, "durable nodes decline re-splitting");
    assert_eq!(report.moved_entries, 0);
    assert!(report.imbalance > 1.2, "the signal itself is still read");

    let (exists2, values2) = cluster.lookup_insert_batch_values(&hot).unwrap();
    assert!(exists2.iter().all(|e| *e));
    assert_eq!(values2, values1);
    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn autotune_is_a_noop_on_single_threaded_nodes() {
    let config = NodeConfig::small_test().with_shards(1);
    let cluster = ShhcCluster::spawn(ClusterConfig::new(2, config)).unwrap();
    let fps: Vec<Fingerprint> = (0..50).map(Fingerprint::from_u64).collect();
    cluster.lookup_insert_batch(&fps).unwrap();
    let reports = cluster.autotune(AutotuneOptions::default()).unwrap();
    assert_eq!(reports.len(), 2);
    for r in &reports {
        assert_eq!(r.shards, 1);
        assert!(!r.resplit);
        assert!(r.cache_shift.is_none());
    }
    let again = cluster.lookup_insert_batch(&fps).unwrap();
    assert!(again.iter().all(|e| *e));
    cluster.shutdown().unwrap();
}

#[test]
fn autotune_shifts_cache_capacity_toward_the_missing_shard() {
    let config = NodeConfig::small_test()
        .with_shards(4)
        .with_durability(Durability::Volatile);
    let cluster = ShhcCluster::spawn(ClusterConfig::new(1, config)).unwrap();
    // Populate everywhere, then hammer the low prefix (shard 0) with a
    // working set far beyond its cache share so its recent misses
    // dominate.
    let spread: Vec<Fingerprint> = (0..64)
        .map(|i: u64| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    cluster.lookup_insert_batch(&spread).unwrap();
    let hot: Vec<Fingerprint> = (0..600).map(Fingerprint::from_u64).collect();
    for _ in 0..4 {
        cluster.lookup_insert_batch(&hot).unwrap();
    }
    let opts = AutotuneOptions {
        // Leave the ranges alone so the cache shift is isolated, and
        // scale the sizer to the test nodes' small per-shard caches
        // (64 total / 4 shards = 16 each).
        resplit: false,
        sizer: shhc::SizerConfig {
            min_capacity: 4,
            step: 8,
            hysteresis: 2.0,
        },
        ..AutotuneOptions::default()
    };
    let report = &cluster.autotune(opts).unwrap()[0];
    let shift = report
        .cache_shift
        .expect("skewed misses move cache capacity");
    assert_eq!(shift.to, 0, "the missing shard receives: {shift:?}");
    assert!(shift.entries > 0);
    // Still byte-identical afterwards.
    let again = cluster.lookup_insert_batch(&hot).unwrap();
    assert!(again.iter().all(|e| *e));
    cluster.shutdown().unwrap();
}
