//! Integration tests for the shared front-end: idle-batch starvation
//! regression, cross-client answer fidelity, and the end-to-end
//! many-clients-one-service shape.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use shhc::{
    BackupClient, BackupService, ClusterConfig, Frontend, SharedFrontend, ShhcCluster, SyncFrontend,
};
use shhc_chunking::FixedChunker;
use shhc_storage::MemChunkStore;
use shhc_types::{Fingerprint, Nanos};
use shhc_workload::{Dataset, DatasetSpec, MultiClientSpec};

/// Regression for the idle-batch starvation bug: the legacy front-end
/// evaluated `max_age` only on the next `submit`, so a lone fingerprint
/// was never answered. The shared front-end's flusher thread must answer
/// it within ≈`max_age`, with no further submit or flush call.
#[test]
fn lone_fingerprint_is_answered_within_max_age() {
    let max_age = Duration::from_millis(25);
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();

    // The old architecture really does starve: nothing is dispatched no
    // matter how long we wait, because nobody calls into the session.
    let mut legacy = SyncFrontend::new(cluster.clone(), 1000, Nanos::from(max_age));
    assert!(legacy.submit(Fingerprint::from_u64(1)).unwrap().is_none());
    std::thread::sleep(3 * max_age);
    assert_eq!(
        legacy.pending_len(),
        1,
        "legacy front-end must still be starving the batch (that's the bug)"
    );
    assert_eq!(legacy.batches_sent(), 0);
    // Only the *next* call releases it — 3×max_age too late.
    assert_eq!(legacy.flush().unwrap().len(), 1);

    // The shared front-end answers through the ticket, unprompted.
    let frontend = SharedFrontend::new(cluster.clone(), 1000, max_age);
    let start = Instant::now();
    let ticket = frontend.submit(Fingerprint::from_u64(2));
    let answer = ticket
        .wait_timeout(Duration::from_secs(10))
        .expect("flusher must answer a lone fingerprint");
    let waited = start.elapsed();
    assert!(!answer.existed);
    assert!(waited >= max_age, "must respect the age limit ({waited:?})");
    assert!(
        waited < max_age * 20,
        "answered {waited:?} after submit; expected ≈{max_age:?}"
    );
    assert_eq!(frontend.stats().closed_by_age, 1);
    cluster.shutdown().unwrap();
}

/// K threads submitting disjoint trace shards through one shared
/// front-end must get byte-identical answers to the same fingerprints
/// run sequentially through `lookup_insert_batch`.
#[test]
fn concurrent_shards_match_sequential_answers() {
    let clients = 4usize;
    let spec = MultiClientSpec::open_loop(clients, 250);
    let shards = spec.shards();

    // Sequential reference: each shard replayed in order, one
    // fingerprint at a time, against a fresh cluster. Shards are
    // disjoint, so per-shard replay order is the only order that
    // matters.
    let reference_cluster = ShhcCluster::spawn(ClusterConfig::small_test(3)).unwrap();
    let mut reference: Vec<Vec<bool>> = Vec::new();
    for shard in &shards {
        let mut answers = Vec::with_capacity(shard.len());
        for fp in shard {
            answers.push(reference_cluster.lookup_insert_batch(&[*fp]).unwrap()[0]);
        }
        reference.push(answers);
    }
    reference_cluster.shutdown().unwrap();

    // Concurrent run: each client waits for every ticket before its next
    // submission, so its own duplicates stay ordered; cross-client
    // batching is what actually fills the batches.
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3)).unwrap();
    let frontend = SharedFrontend::new(cluster.clone(), clients, Duration::from_millis(1));
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for shard in shards {
        let frontend = frontend.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            shard
                .iter()
                .map(|fp| frontend.submit(*fp).wait().unwrap().existed)
                .collect::<Vec<bool>>()
        }));
    }
    let concurrent: Vec<Vec<bool>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(
        concurrent, reference,
        "shared front-end answers diverge from sequential replay"
    );
    let stats = frontend.stats();
    assert!(
        stats.mean_occupancy() > 1.5,
        "batches must actually aggregate across clients (occupancy {:.2})",
        stats.mean_occupancy()
    );
    cluster.shutdown().unwrap();
}

/// Session facades over one shared front-end preserve per-session
/// arrival order and never leak another session's answers.
#[test]
fn session_facades_preserve_order_under_concurrency() {
    let clients = 4usize;
    let per_client = 300usize;
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let shared = SharedFrontend::new(cluster.clone(), 8, Duration::from_millis(1));
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for c in 0..clients as u64 {
        let shared = shared.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut session = Frontend::attach(shared);
            barrier.wait();
            let mut answered: Vec<Fingerprint> = Vec::new();
            for i in 0..per_client as u64 {
                let fp = Fingerprint::from_u64((c << 32) | i);
                if let Some(results) = session.submit(fp).unwrap() {
                    answered.extend(results.iter().map(|(fp, _)| *fp));
                }
            }
            answered.extend(session.flush().unwrap().iter().map(|(fp, _)| *fp));
            answered
        }));
    }
    for (c, handle) in handles.into_iter().enumerate() {
        let answered = handle.join().unwrap();
        let expected: Vec<Fingerprint> = (0..per_client as u64)
            .map(|i| Fingerprint::from_u64(((c as u64) << 32) | i))
            .collect();
        assert_eq!(answered, expected, "client {c} answers out of order");
    }
    cluster.shutdown().unwrap();
}

/// The end-to-end Figure-4 shape: N `BackupClient` sessions on N threads
/// snapshot concurrently through clones of one `BackupService`, and every
/// snapshot restores byte-exactly.
#[test]
fn concurrent_backup_clients_share_one_service() {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2)).unwrap();
    let service = BackupService::new(
        cluster.clone(),
        FixedChunker::new(256),
        MemChunkStore::new(1 << 24),
        16,
    );
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let service = service.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = BackupClient::new(service);
            let dataset = Dataset::generate(&DatasetSpec {
                files: 6,
                mean_file_size: 4096,
                seed: 7000 + c,
            });
            let (snap, report) = client.snapshot(&dataset).unwrap();
            assert_eq!(report.files_changed, 6);
            let restored = client.restore_snapshot(&snap).unwrap();
            assert_eq!(restored, dataset, "client {c} restore diverged");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = service.frontend().stats();
    assert!(stats.batches > 0);
    drop(service);
    cluster.shutdown().unwrap();
}
