//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored
//! mini-serde, written against `proc_macro` directly (no syn/quote — the
//! build environment is offline).
//!
//! Supported input shapes — exactly what the SHHC sources need:
//! - structs with named fields,
//! - tuple structs (serialized as sequences),
//! - `#[serde(transparent)]` newtype structs (delegate to the inner field).
//!
//! Generated code references the `serde` crate by path, so the derive must
//! be used through `serde`'s re-export (as the workspace does).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Description of the type a derive was applied to.
struct Input {
    name: String,
    transparent: bool,
    fields: Fields,
}

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;

    // Outer attributes: `# [ ... ]`, watching for `#[serde(transparent)]`.
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        let Some(TokenTree::Group(g)) = iter.next() else {
            panic!("serde_derive: malformed attribute");
        };
        let mut attr = g.stream().into_iter();
        if let Some(TokenTree::Ident(name)) = attr.next() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = attr.next() {
                    let args = args.stream().to_string();
                    if args.contains("transparent") {
                        transparent = true;
                    } else {
                        panic!("serde_derive: unsupported serde attribute `{args}`");
                    }
                }
            }
        }
    }

    // Visibility, then `struct`/`enum`.
    let mut kind = None;
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "struct" => {
                    kind = Some("struct");
                    break;
                }
                "enum" => {
                    kind = Some("enum");
                    break;
                }
                _ => {}
            }
        }
    }
    if kind != Some("struct") {
        panic!("serde_derive: only structs are supported by the vendored mini-serde");
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct name, got {other:?}"),
    };

    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic structs are not supported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
            name,
            transparent,
            fields: Fields::Named(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
            name,
            transparent,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        },
        other => panic!("serde_derive: unsupported struct body {other:?}"),
    }
}

/// Extracts field names from a named-field body. Types are skipped by
/// consuming tokens to the next comma outside `<...>` nesting (token
/// streams do not group angle brackets).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() != '#' {
                break;
            }
            iter.next();
            iter.next(); // the [...] group
        }
        // Visibility.
        while let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    iter.next(); // pub(crate) etc.
                }
            } else {
                break;
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("serde_derive: expected field name, got {tt:?}");
        };
        names.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}

fn count_tuple_fields(body: TokenStream) -> usize {
    // Count field *starts* (first token, and the first token after each
    // top-level comma), so a trailing comma adds no phantom field.
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut in_field = false;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    in_field = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_field {
            count += 1;
            in_field = true;
        }
    }
    count
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match (&input.fields, input.transparent) {
        (Fields::Tuple(1), true) => "serde::Serialize::serialize(&self.0, __s)".to_owned(),
        (Fields::Named(fields), true) if fields.len() == 1 => {
            format!("serde::Serialize::serialize(&self.{}, __s)", fields[0])
        }
        (_, true) => panic!("serde_derive: #[serde(transparent)] requires exactly one field"),
        (Fields::Named(fields), false) => {
            let mut code = format!(
                "use serde::ser::SerializeStruct as _;\n\
                 let mut __st = serde::Serializer::serialize_struct(__s, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                code.push_str(&format!("__st.serialize_field(\"{f}\", &self.{f})?;\n"));
            }
            code.push_str("__st.end()");
            code
        }
        (Fields::Tuple(n), false) => {
            let mut code = format!(
                "use serde::ser::SerializeSeq as _;\n\
                 let mut __seq = serde::Serializer::serialize_seq(__s, Some({n}))?;\n"
            );
            for i in 0..*n {
                code.push_str(&format!("__seq.serialize_element(&self.{i})?;\n"));
            }
            code.push_str("__seq.end()");
            code
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl should parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match (&input.fields, input.transparent) {
        (Fields::Tuple(1), true) => {
            format!("serde::Deserialize::deserialize(__d).map({name})")
        }
        (Fields::Named(fields), true) if fields.len() == 1 => {
            let f = &fields[0];
            format!("serde::Deserialize::deserialize(__d).map(|__v| {name} {{ {f}: __v }})")
        }
        (_, true) => panic!("serde_derive: #[serde(transparent)] requires exactly one field"),
        (Fields::Named(fields), false) => {
            let mut code = format!(
                "let __v = serde::Deserializer::into_value(__d)?;\n\
                 let mut __m = match __v {{\n\
                     serde::value::Value::Map(m) => m,\n\
                     other => return Err(<__D::Error as serde::de::Error>::custom(\n\
                         format!(\"expected map for struct {name}, got {{other:?}}\"))),\n\
                 }};\n"
            );
            for (i, f) in fields.iter().enumerate() {
                // Absent fields deserialize from Null so `Option` fields
                // default to `None`; everything else reports the miss.
                code.push_str(&format!(
                    "let __f{i} = {{\n\
                         let __val = serde::value::take(&mut __m, \"{f}\")\n\
                             .unwrap_or(serde::value::Value::Null);\n\
                         serde::Deserialize::deserialize(\n\
                             serde::value::ValueDeserializer::<__D::Error>::new(__val))\n\
                             .map_err(|__e| <__D::Error as serde::de::Error>::custom(\n\
                                 format!(\"field `{f}` of {name}: {{__e}}\")))?\n\
                     }};\n"
                ));
            }
            code.push_str(&format!("Ok({name} {{\n"));
            for (i, f) in fields.iter().enumerate() {
                code.push_str(&format!("{f}: __f{i},\n"));
            }
            code.push_str("})");
            code
        }
        (Fields::Tuple(n), false) => {
            let mut code = format!(
                "let __v = serde::Deserializer::into_value(__d)?;\n\
                 let __items = match __v {{\n\
                     serde::value::Value::Seq(items) if items.len() == {n} => items,\n\
                     other => return Err(<__D::Error as serde::de::Error>::custom(\n\
                         format!(\"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                 }};\n\
                 let mut __it = __items.into_iter();\n"
            );
            for i in 0..*n {
                code.push_str(&format!(
                    "let __f{i} = serde::Deserialize::deserialize(\n\
                         serde::value::ValueDeserializer::<__D::Error>::new(\
                             __it.next().unwrap()))?;\n"
                ));
            }
            code.push_str(&format!("Ok({name}("));
            for i in 0..*n {
                code.push_str(&format!("__f{i},"));
            }
            code.push_str("))");
            code
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl should parse")
}
