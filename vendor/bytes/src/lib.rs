//! Minimal, offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable buffer (`Arc<[u8]>` plus a
//! view window), [`BytesMut`] a growable builder that freezes into one,
//! and [`Buf`]/[`BufMut`] the little-endian/big-endian cursor traits the
//! wire codec uses.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply-cloneable, immutable, contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied once; the shim has no zero-copy
    /// static storage, which only matters for large constants).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer — one allocation and one copy,
    /// straight into the shared storage (no intermediate `Vec`).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns the view as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Shortens the view to `len` bytes, dropping the tail.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Returns a sub-view of the given range.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of reserved space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.inner).fmt(f)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

macro_rules! buf_get {
    ($($name:ident -> $t:ty, $from:ident;)*) => {$(
        /// Reads one value, advancing the cursor.
        ///
        /// # Panics
        ///
        /// Panics if fewer than `size_of` bytes remain.
        fn $name(&mut self) -> $t {
            let mut raw = [0u8; std::mem::size_of::<$t>()];
            self.copy_to_slice(&mut raw);
            <$t>::$from(raw)
        }
    )*};
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    buf_get! {
        get_u16 -> u16, from_be_bytes;
        get_u16_le -> u16, from_le_bytes;
        get_u32 -> u32, from_be_bytes;
        get_u32_le -> u32, from_le_bytes;
        get_u64 -> u64, from_be_bytes;
        get_u64_le -> u64, from_le_bytes;
        get_i32 -> i32, from_be_bytes;
        get_i32_le -> i32, from_le_bytes;
        get_i64 -> i64, from_be_bytes;
        get_i64_le -> i64, from_le_bytes;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

macro_rules! buf_put {
    ($($name:ident($t:ty), $to:ident;)*) => {$(
        /// Appends one value.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.$to());
        }
    )*};
}

/// Append-only write cursor.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put! {
        put_u16(u16), to_be_bytes;
        put_u16_le(u16), to_le_bytes;
        put_u32(u32), to_be_bytes;
        put_u32_le(u32), to_le_bytes;
        put_u64(u64), to_be_bytes;
        put_u64_le(u64), to_le_bytes;
        put_i32(i32), to_be_bytes;
        put_i32_le(i32), to_le_bytes;
        put_i64(i64), to_be_bytes;
        put_i64_le(i64), to_le_bytes;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(42);
        b.put_u8(7);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_views_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![4, 5]));
    }
}
