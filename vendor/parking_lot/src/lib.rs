//! Minimal, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API:
//! `lock()`/`read()`/`write()` return guards directly, recovering from
//! poisoning (parking_lot has no poisoning at all, so swallowing it
//! matches the real crate's semantics).

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}
