//! Minimal, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API:
//! `lock()`/`read()`/`write()` return guards directly, recovering from
//! poisoning (parking_lot has no poisoning at all, so swallowing it
//! matches the real crate's semantics).

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    ///
    /// Fairness: real parking_lot readers are *eventually fair* (a
    /// blocked writer eventually stops new readers from barging). This
    /// shim delegates to `std::sync::RwLock`, whose fairness is whatever
    /// the platform provides — on Linux (futex-based) writers are not
    /// starved, but readers arriving while a writer waits may or may not
    /// barge. Callers that need a guaranteed-bounded wait should use
    /// [`RwLock::try_read`] / [`RwLock::try_write`] and count the misses
    /// (the striped index backends do exactly this for their
    /// `lock_waits` statistic).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    ///
    /// Returns `None` when a writer holds the lock (or, on some
    /// platforms, when a writer is merely queued — std's `try_read` may
    /// respect writer priority). Like every accessor here, poisoning is
    /// swallowed to match parking_lot's panic-free semantics.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the exclusive write lock without blocking.
    ///
    /// Returns `None` when any reader or writer holds the lock.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_try_lock_reports_contention() {
        let m = Mutex::new(1);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held mutex must refuse try_lock");
        }
        assert_eq!(*m.try_lock().expect("free mutex"), 1);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(7u32);
        // Two concurrent readers are fine; a writer is shut out.
        let r1 = l.try_read().expect("first reader");
        let r2 = l.try_read().expect("second reader");
        assert_eq!((*r1, *r2), (7, 7));
        assert!(l.try_write().is_none(), "readers must block try_write");
        drop(r1);
        assert!(l.try_write().is_none(), "one reader still blocks writes");
        drop(r2);
        let mut w = l.try_write().expect("free lock");
        *w = 8;
        // A held writer excludes both readers and writers.
        assert!(w.eq(&8));
        assert!(l.try_read().is_none(), "writer must block try_read");
        assert!(l.try_write().is_none(), "writer must block try_write");
        drop(w);
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn rwlock_poison_is_swallowed() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(3u32));
        let inner = Arc::clone(&l);
        // Panic while holding the write lock: std would poison; the shim
        // (like real parking_lot) keeps the lock usable.
        let _ = std::thread::spawn(move || {
            let _g = inner.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.try_read().expect("recovered read"), 3);
        *l.try_write().expect("recovered write") = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn rwlock_blocking_read_waits_out_a_writer() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(0u32));
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                let mut g = l.write();
                std::thread::sleep(std::time::Duration::from_millis(20));
                *g = 42;
            })
        };
        // Give the writer time to acquire, then block in read().
        std::thread::sleep(std::time::Duration::from_millis(5));
        let seen = *l.read();
        writer.join().expect("writer thread");
        assert_eq!(seen, 42, "blocking read must observe the write");
    }
}
