//! Minimal, offline stand-in for the `crossbeam` facade crate.
//!
//! Only [`channel`] is provided: multi-producer multi-consumer unbounded
//! channels with cloneable senders *and* receivers, plus crossbeam's
//! disconnect semantics (receives drain buffered messages before
//! reporting disconnection). Built on `Mutex` + `Condvar`.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC unbounded channels (crossbeam-channel API subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Taking the lock linearizes the disconnect against in-flight
            // sends, which check the receiver count under the same lock.
            let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Checked under the lock so a concurrent last-receiver drop
            // (which also takes the lock) cannot strand the message.
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    if self.shared.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns a buffered message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of buffered messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains and returns all currently buffered messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn mpmc_fan_in_fan_out() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for t in 0..4u32 {
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let rx2 = rx.clone();
            let collector = thread::spawn(move || {
                let mut n = 0;
                while rx2.recv().is_ok() {
                    n += 1;
                }
                n
            });
            let mut local = 0;
            while rx.recv().is_ok() {
                local += 1;
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(local + collector.join().unwrap(), 400);
        }

        #[test]
        fn disconnect_drains_before_erroring() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_no_receivers_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
