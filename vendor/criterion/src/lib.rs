//! Minimal, offline stand-in for `criterion`.
//!
//! Implements the macro/entry-point surface the bench targets use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations) with a simple but honest
//! measurement loop: warm-up, then `sample_size` timed samples whose
//! median and min/max are reported on stdout. No statistics engine, no
//! HTML reports — numbers suitable for coarse regression spotting.
//!
//! `cargo bench -- <filter>` filters benchmark ids by substring, like the
//! real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (configuration + run loop).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Reads a benchmark-id substring filter from the command line
    /// (everything after `--` when invoked via `cargo bench`).
    pub fn configure_from_args(mut self) -> Self {
        let filter: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        if !filter.is_empty() {
            self.filter = Some(filter.join(" "));
        }
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let saved_sample_size = self.sample_size;
        let saved_measurement_time = self.measurement_time;
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
            saved_sample_size,
            saved_measurement_time,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, throughput: Option<Throughput>, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: double the iteration count until one batch fills the
        // warm-up budget, which also calibrates the batch size.
        let warm_up_start = Instant::now();
        loop {
            f(&mut b);
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
            b.iters = (b.iters * 2).min(1 << 30);
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;

        // Pick a batch size so all samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 30);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = batch;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];

        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!(" thrpt: {}/s", format_bytes(n as f64 / median))
            }
            Some(Throughput::Elements(n)) => {
                format!(" thrpt: {:.3} Melem/s", n as f64 / median / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{id:<40} time: [{} {} {}]{rate}",
            format_time(min),
            format_time(median),
            format_time(max),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn format_bytes(bytes_per_sec: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.3} GiB", bytes_per_sec / GIB)
    } else if bytes_per_sec >= MIB {
        format!("{:.3} MiB", bytes_per_sec / MIB)
    } else if bytes_per_sec >= KIB {
        format!("{:.3} KiB", bytes_per_sec / KIB)
    } else {
        format!("{bytes_per_sec:.1} B")
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
///
/// `sample_size`/`measurement_time` overrides are scoped to the group:
/// the parent [`Criterion`] configuration is restored when the group is
/// finished (or dropped), matching real criterion's behaviour.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    saved_sample_size: usize,
    saved_measurement_time: Duration,
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.sample_size = self.saved_sample_size;
        self.criterion.measurement_time = self.saved_measurement_time;
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
