//! Minimal, offline stand-in for `serde_json`: renders and parses the
//! vendored mini-serde [`Value`](serde::value::Value) tree as JSON text.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) — enough for manifest/trace round-trips in the
//! SHHC workspace. Struct field order is preserved on output.

#![forbid(unsafe_code)]

use serde::value::{to_value, Value, ValueDeserializer, ValueError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<ValueError> for Error {
    fn from(e: ValueError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    render(&v, &mut out);
    Ok(out)
}

/// Serializes `value` as a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::deserialize(ValueDeserializer::<Error>::new(value))
}

/// Deserializes a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let s = x.to_string();
                out.push_str(&s);
                // Keep the number a JSON number but distinguishable as float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render(v, out);
            }
            out.push('}');
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' in array, got {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' in object, got {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?;
        u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        id: u32,
        label: String,
        weights: Vec<f64>,
        note: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct TrailingTuple(u32, u32);

    #[test]
    fn named_struct_round_trip() {
        let v = Named {
            id: 7,
            label: "a \"quoted\" label\n".to_owned(),
            weights: vec![0.5, 2.0, -1.25],
            note: None,
        };
        let json = super::to_string(&v).expect("serialize");
        let back: Named = super::from_str(&json).expect("deserialize");
        assert_eq!(back, v);
    }

    #[test]
    fn missing_optional_field_defaults_to_none() {
        let back: Named =
            super::from_str(r#"{"id":1,"label":"x","weights":[]}"#).expect("deserialize");
        assert_eq!(back.note, None);
    }

    #[test]
    fn tuple_struct_with_trailing_comma_round_trips() {
        let v = TrailingTuple(3, 4);
        let json = super::to_string(&v).expect("serialize");
        assert_eq!(json, "[3,4]");
        let back: TrailingTuple = super::from_str(&json).expect("deserialize");
        assert_eq!(back, v);
    }

    #[test]
    fn integer_keyed_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(42u64, "answer".to_owned());
        m.insert(7u64, "lucky".to_owned());
        let json = super::to_string(&m).expect("serialize");
        let back: BTreeMap<u64, String> = super::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(super::from_str::<Named>("{\"id\":}").is_err());
        assert!(super::from_str::<Vec<u8>>("[1,2,").is_err());
        assert!(super::from_str::<u64>("123 trailing").is_err());
    }
}
