//! Minimal, offline stand-in for the `rand` crate (0.8-flavoured API).
//!
//! Provides [`RngCore`], [`Rng`], [`SeedableRng`] and [`rngs::StdRng`] —
//! the slice the SHHC workspace uses. `StdRng` is xoshiro256++ seeded via
//! SplitMix64, so streams are deterministic per seed (which the seeded
//! workload generators and simulators rely on), fast, and well mixed.
//! There is deliberately no entropy source: every construction site in the
//! workspace goes through `seed_from_u64`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

/// Types with a standard uniform distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone || zone == 0 {
            return hi;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=3u8);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
