//! The self-describing value tree that backs this mini-serde.

use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{self, Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};
use std::fmt;
use std::marker::PhantomData;

/// A dynamically-typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Removes and returns the value stored under `key`, if present.
///
/// Helper for derive-generated struct deserialization.
pub fn take(map: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
    let idx = map.iter().position(|(k, _)| k == key)?;
    Some(map.remove(idx).1)
}

/// Error produced when serializing to or deserializing from a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializes any `T: Serialize` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
    v.serialize(ValueSerializer)
}

/// Deserializes a `T` out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(v: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::<ValueError>::new(v))
}

/// A [`Serializer`] whose output is a [`Value`].
pub struct ValueSerializer;

/// In-progress sequence for [`ValueSerializer`].
pub struct ValueSeq(Vec<Value>);
/// In-progress map for [`ValueSerializer`].
pub struct ValueMap(Vec<(String, Value)>);

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    type SerializeSeq = ValueSeq;
    type SerializeMap = ValueMap;
    type SerializeStruct = ValueMap;

    fn serialize_bool(self, v: bool) -> Result<Value, ValueError> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, ValueError> {
        if v >= 0 {
            Ok(Value::U64(v as u64))
        } else {
            Ok(Value::I64(v))
        }
    }
    fn serialize_u64(self, v: u64) -> Result<Value, ValueError> {
        Ok(Value::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, ValueError> {
        Ok(Value::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Value, ValueError> {
        Ok(Value::Str(v.to_owned()))
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<Value, ValueError> {
        Ok(Value::Seq(
            v.iter().map(|&b| Value::U64(b as u64)).collect(),
        ))
    }
    fn serialize_unit(self) -> Result<Value, ValueError> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, ValueError> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Value, ValueError> {
        v.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeq, ValueError> {
        Ok(ValueSeq(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<ValueMap, ValueError> {
        Ok(ValueMap(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ValueMap, ValueError> {
        Ok(ValueMap(Vec::with_capacity(len)))
    }
}

impl SerializeSeq for ValueSeq {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), ValueError> {
        self.0.push(v.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(Value::Seq(self.0))
    }
}

impl SerializeMap for ValueMap {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), ValueError> {
        let key = match key.serialize(ValueSerializer)? {
            Value::Str(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            other => {
                return Err(ValueError(format!("unsupported map key: {other:?}")));
            }
        };
        self.0.push((key, value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(Value::Map(self.0))
    }
}

impl SerializeStruct for ValueMap {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        v: &T,
    ) -> Result<(), ValueError> {
        self.0
            .push((name.to_owned(), v.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(Value::Map(self.0))
    }
}

/// A [`Deserializer`] that reads back out of a [`Value`], generic over the
/// caller's error type so nested deserialization keeps `D::Error` intact.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps a value for deserialization.
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn into_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}
