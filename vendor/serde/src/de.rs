//! Deserialization half of the mini-serde data model.
//!
//! Unlike real serde's visitor machinery, every deserializer here can
//! surrender a self-describing [`Value`](crate::value::Value); concrete
//! `Deserialize` impls pattern-match on that. The generic signatures still
//! mirror serde's, so hand-written impls port over unchanged.

use crate::value::{Value, ValueDeserializer};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// Error trait for deserializers.
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;

    /// A required struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// A data format that can deserialize the supported data model.
pub trait Deserializer<'de>: Sized {
    /// Error type produced on failure.
    type Error: Error;

    /// Whether the format is human readable (JSON is).
    fn is_human_readable(&self) -> bool {
        true
    }

    /// Consumes the deserializer, yielding the underlying value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn unexpected<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format_args!("expected {expected}, got {got:?}"))
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_value()? {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format_args!("integer {n} out of range"))),
                    v => Err(unexpected(stringify!($t), &v)),
                }
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let wide: i64 = match d.into_value()? {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| D::Error::custom(format_args!("integer {n} out of range")))?,
                    Value::I64(n) => n,
                    v => return Err(unexpected(stringify!($t), &v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| D::Error::custom(format_args!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            v => Err(unexpected("f64", &v)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Bool(b) => Ok(b),
            v => Err(unexpected("bool", &v)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Str(s) => Ok(s),
            v => Err(unexpected("string", &v)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected a single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Null => Ok(()),
            v => Err(unexpected("null", &v)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Null => Ok(None),
            v => T::deserialize(ValueDeserializer::<D::Error>::new(v)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| T::deserialize(ValueDeserializer::<D::Error>::new(v)))
                .collect(),
            v => Err(unexpected("sequence", &v)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format_args!("expected {N} elements, got {len}")))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = A::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let b = B::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                Ok((a, b))
            }
            v => Err(unexpected("2-element sequence", &v)),
        }
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: Deserialize<'de>,
    B: Deserialize<'de>,
    C: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Seq(items) if items.len() == 3 => {
                let mut it = items.into_iter();
                let a = A::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let b = B::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let c = C::deserialize(ValueDeserializer::<D::Error>::new(it.next().unwrap()))?;
                Ok((a, b, c))
            }
            v => Err(unexpected("3-element sequence", &v)),
        }
    }
}

fn de_map_entries<'de, K, V, D>(d: D) -> Result<Vec<(K, V)>, D::Error>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    match d.into_value()? {
        Value::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                // JSON object keys are always strings; integer-keyed maps
                // round-trip by re-parsing the key (as real serde_json does).
                let k = K::deserialize(ValueDeserializer::<D::Error>::new(Value::Str(k.clone())))
                    .or_else(|str_err| {
                    let reparsed = if let Ok(n) = k.parse::<u64>() {
                        Value::U64(n)
                    } else if let Ok(n) = k.parse::<i64>() {
                        Value::I64(n)
                    } else {
                        return Err(str_err);
                    };
                    K::deserialize(ValueDeserializer::<D::Error>::new(reparsed))
                })?;
                let v = V::deserialize(ValueDeserializer::<D::Error>::new(v))?;
                Ok((k, v))
            })
            .collect(),
        v => Err(unexpected("map", &v)),
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        de_map_entries(d).map(|entries| entries.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        de_map_entries(d).map(|entries| entries.into_iter().collect())
    }
}
