//! Minimal, offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of serde's API that the SHHC sources actually use:
//! `Serialize`/`Deserialize` (plus their derive macros, re-exported from
//! `serde_derive`), the `Serializer`/`Deserializer` traits with
//! `is_human_readable`, and the `ser::Error`/`de::Error` traits.
//!
//! Instead of serde's visitor-based data model, deserialization funnels
//! through a single self-describing [`value::Value`] tree; `serde_json`
//! renders and parses that tree. The generic trait signatures mirror real
//! serde closely enough that hand-written impls (e.g. `Fingerprint`'s
//! hex form) compile unchanged, so swapping the real crates back in when
//! a registry is available is a manifest-only change.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
