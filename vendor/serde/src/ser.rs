//! Serialization half of the mini-serde data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error trait for serializers.
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data format that can serialize the supported data model.
///
/// This mirrors real serde's `Serializer`, trimmed to the method set the
/// workspace uses (scalars, strings, bytes, options, sequences, maps and
/// structs).
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Whether the format is human readable (JSON is).
    fn is_human_readable(&self) -> bool {
        true
    }
    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes opaque bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence of `len` elements (when known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map of `len` entries (when known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Incremental sequence serialization.
pub trait SerializeSeq {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Appends one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental map serialization.
pub trait SerializeMap {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Appends one `key: value` entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental struct serialization.
pub trait SerializeStruct {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        v: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}
impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}
impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}
impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}
impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}
impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}
impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self[..].serialize(s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self[..].serialize(s)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(3))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
