//! String strategies from regex-like patterns.
//!
//! Real proptest compiles full regexes; this shim supports the subset
//! that appears in test patterns: literal characters, `.`, character
//! classes `[a-z0-9_]` (ranges and plain members; leading `^` negates
//! over printable ASCII), and the quantifiers `{m,n}`, `{n}`, `*`, `+`,
//! `?` (unbounded forms cap at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Any printable ASCII character (`.`).
    Dot,
    /// One of an explicit set (`[...]`).
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A compiled pattern usable as a `Strategy<Value = String>`.
#[derive(Debug, Clone)]
pub struct StringParam {
    pieces: Vec<Piece>,
}

const PRINTABLE: (u8, u8) = (0x20, 0x7e);

fn parse(pattern: &str) -> StringParam {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut body = &chars[i + 1..close];
                let negate = body.first() == Some(&'^');
                if negate {
                    body = &body[1..];
                }
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j], body[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                if negate {
                    let excluded = set;
                    set = (PRINTABLE.0..=PRINTABLE.1)
                        .map(|b| b as char)
                        .filter(|c| !excluded.contains(c))
                        .collect();
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("bad {m,n} lower bound");
                        let hi = hi.trim().parse().expect("bad {m,n} upper bound");
                        (lo, hi)
                    }
                    None => {
                        let n = body.trim().parse().expect("bad {n} count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    StringParam { pieces }
}

impl Strategy for StringParam {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let span = (piece.max - piece.min) as u64;
            let count = piece.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Dot => {
                        let b =
                            PRINTABLE.0 + rng.below((PRINTABLE.1 - PRINTABLE.0 + 1) as u64) as u8;
                        out.push(b as char);
                    }
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        parse(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_class_with_counted_repeat() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[ -~]{0,64}".generate(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = "ab[0-9]{3}c?".generate(&mut rng);
        assert!(s.starts_with("ab"));
        let digits: String = s[2..5].to_string();
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
    }
}
