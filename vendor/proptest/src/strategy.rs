//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ObjectSafeStrategy<T>>);

/// Object-safe generation, blanket-implemented for every strategy.
trait ObjectSafeStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ObjectSafeStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice among strategies (the `prop_oneof!` expansion).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
