//! Case generation, the deterministic RNG, and the pass/fail loop.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and is retried.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// The deterministic generator handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator, expanding the seed with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `bound` (multiply-shift; bias is negligible for
    /// test-case generation).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `f` until `config.cases` cases pass; panics on the first failure.
///
/// Seeds derive from the test name, so failures reproduce on re-run.
pub fn run<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name gives a stable per-test seed base.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x0000_0100_0000_01b3);
    }

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(case));
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                if rejected > config.cases.saturating_mul(20) {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected}); last: {reason}"
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest `{name}` failed at case #{case} \
                     (seed base {base:#x}): {reason}"
                );
            }
        }
        case += 1;
    }
}
