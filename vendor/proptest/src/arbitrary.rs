//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: the full bit-pattern domain is rarely what a
        // property over arithmetic wants.
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
        } else {
            (rng.below(0x5f) as u8 + 0x20) as char
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
