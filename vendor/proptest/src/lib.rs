//! Minimal, offline stand-in for `proptest`.
//!
//! Supports the subset the SHHC test-suite uses: the `proptest!` macro
//! (with `x in strategy`, `x: Type` and `#![proptest_config(...)]`
//! forms), `any::<T>()`, integer-range strategies, tuple strategies,
//! `Just`, `prop_map`, `prop_oneof!`, `proptest::collection::vec`, and
//! the `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its case number and the deterministic per-test seed, which is enough
//! to re-run it. Case generation is seeded from the test name, so runs
//! are reproducible; set `PROPTEST_CASES` to change the case count
//! (default 64).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// Each item must look like a `#[test]` function whose parameters are
/// either `name in strategy` or `name: Type` (desugared to
/// `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one generated fn per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run($config, stringify!($name), |__pt_rng| {
                    $crate::__proptest_bind!(__pt_rng; $body; $($params)*)
                });
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: binds each parameter from its
/// strategy, then evaluates the body inside a `Result` closure so the
/// `prop_assert*` macros can early-return.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $body:block; $(,)?) => {{
        #[allow(clippy::redundant_closure_call)]
        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::core::result::Result::Ok(())
        })()
    }};
    ($rng:ident; $body:block; mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let mut $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; $name:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; mut $name:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let mut $name: $ty = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $body; $($($rest)*)?)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (does not count it as run) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
