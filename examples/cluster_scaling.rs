//! Cluster-scaling demo: the Figure 5 experiment at example scale.
//!
//! Feeds a mix of the four Table I workloads (scaled down 1/256) through
//! the deterministic virtual-time cluster for 1–4 nodes × three batch
//! sizes, and prints the throughput matrix.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use shhc::prelude::*;
use shhc::{SimCluster, SimClusterConfig};
use shhc_flash::FlashConfig;
use shhc_types::Nanos;

fn main() -> Result<()> {
    let scale = 256;
    println!("generating the four Table I workloads at 1/{scale} scale…");
    let traces: Vec<_> = presets::all()
        .into_iter()
        .map(|spec| spec.scaled(scale).generate())
        .collect();
    let stream = mix(&traces, 7);
    println!("mixed stream: {} fingerprints\n", stream.len());

    // Two client drivers, as in the paper's evaluation setup.
    let half = stream.len() / 2;
    let clients = vec![stream[..half].to_vec(), stream[half..].to_vec()];

    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "nodes", "batch=1", "batch=128", "batch=2048"
    );
    for nodes in 1..=4u32 {
        let mut row = format!("{nodes:>6}");
        for batch in [1usize, 128, 2048] {
            let mut config = SimClusterConfig::paper_scale(nodes, batch);
            // Example-sized node hardware so the run stays snappy.
            config.node_config.flash = FlashConfig::medium_test();
            config.node_config.cache_capacity = 8192;
            config.node_config.bloom_expected = 500_000;
            config.node_config.cpu_per_op = Nanos::from_micros(20);
            let mut sim = SimCluster::new(config)?;
            let report = sim.run(&clients)?;
            row.push_str(&format!(" {:>11.0}/s", report.throughput()));
        }
        println!("{row}");
    }

    println!("\nbatching amortizes the per-message network cost (~10x),");
    println!("and batched throughput scales with the node count — the");
    println!("shape of the paper's Figure 5.");
    Ok(())
}
