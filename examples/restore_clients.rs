//! Restore day: four clients stream their backups back concurrently.
//!
//! Each client owns a disjoint deduplicated stream backed up through a
//! shared `BackupService`. All four then restore at once — first over
//! the sequential per-chunk baseline, then over the pipelined read path
//! (batched `Admission::Bypass` locate queries, `get_many` container
//! reads, and a prefetcher overlapping fetch with assembly). Prints
//! per-client throughput for both flavours plus the node cache and
//! locate-audit stats.
//!
//! Run with: `cargo run --release --example restore_clients`

use std::sync::{Arc, Barrier};
use std::time::Instant;

use shhc::prelude::*;
use shhc::NodeConfig;
use shhc_workload::RestoreSpec;

const CLIENTS: usize = 4;

fn main() -> Result<()> {
    println!("SHHC restore at scale: {CLIENTS} concurrent restoring clients\n");

    // A realistic per-frame service overhead is what the pipelined
    // path's batching amortizes; without it both flavours are equally
    // instant in a single process.
    let mut node_config = NodeConfig::small_test();
    node_config.batch_overhead = std::time::Duration::from_micros(80);
    let cluster = ShhcCluster::spawn(ClusterConfig::new(2, node_config))?;
    let service = BackupService::new(
        cluster.clone(),
        FixedChunker::new(4096),
        MemChunkStore::new(1 << 24),
        64,
    );

    let spec = RestoreSpec::open_loop(CLIENTS, 256);
    let payloads = spec.client_payloads();
    let mut manifests = Vec::new();
    for (c, data) in payloads.iter().enumerate() {
        let report = service.backup(StreamId::new(c as u32), data)?;
        manifests.push(report.manifest);
    }
    println!(
        "backed up {} clients × {} chunks × {} B ({:.1} MB logical)\n",
        CLIENTS,
        spec.chunks_per_client,
        spec.chunk_size,
        spec.total_restored_bytes() as f64 / 1e6
    );

    let config = RestoreConfig::new(64, 4);
    for (label, pipelined) in [("sequential", false), ("pipelined", true)] {
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let mut handles = Vec::new();
        for (c, (manifest, payload)) in manifests.iter().zip(&payloads).enumerate() {
            let service = service.clone();
            let barrier = Arc::clone(&barrier);
            let manifest = manifest.clone();
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || -> Result<_> {
                barrier.wait();
                let start = Instant::now();
                let report = if pipelined {
                    service.restore_pipelined_with(&manifest, config)?
                } else {
                    service.restore_with(&manifest, config)?
                };
                let elapsed = start.elapsed();
                assert_eq!(
                    report.data, payload,
                    "client {c}: restore must be byte-exact"
                );
                Ok((c, report, elapsed))
            }));
        }

        println!(
            "{label} restore ({}-chunk batches, window {}):",
            config.batch, config.window
        );
        println!(
            "{:>8} {:>10} {:>12} {:>10} {:>14}",
            "client", "chunks", "elapsed_ms", "MB/s", "locate hits"
        );
        for handle in handles {
            let (c, report, elapsed) = handle.join().expect("client thread")?;
            println!(
                "{c:>8} {:>10} {:>12.1} {:>10.1} {:>13.0}%",
                report.chunks,
                elapsed.as_secs_f64() * 1e3,
                report.bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-9),
                report.locate_coverage() * 100.0
            );
        }
        println!();
    }

    let stats = cluster.stats()?;
    println!("cluster after both restore waves:");
    for node in &stats.nodes {
        println!(
            "  node {}: {} entries, cache {} hits / {} misses / {} evictions \
             ({} ram hits, {} ssd hits, {} queries)",
            node.id,
            node.entries,
            node.cache.hits,
            node.cache.misses,
            node.cache.evictions,
            node.stats.ram_hits,
            node.stats.ssd_hits,
            node.stats.queries
        );
    }

    drop(service);
    cluster.shutdown()?;
    println!("\nok: {CLIENTS} concurrent clients, byte-exact restores on both read paths");
    Ok(())
}
