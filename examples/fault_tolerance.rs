//! Fault tolerance and elastic scaling — the paper's future-work items,
//! implemented: replication with failover, node crash, restart, and
//! online rebalancing when a node joins.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use shhc::{ClusterConfig, ShhcCluster};
use shhc_types::{Fingerprint, NodeId, Result};

fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

fn main() -> Result<()> {
    // Three nodes, every fingerprint on two of them.
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3).with_replication(2))?;
    let batch = fps(0..3_000);

    println!("=== ingest 3000 fingerprints (replication factor 2) ===");
    cluster.lookup_insert_batch(&batch)?;
    for node in &cluster.stats()?.nodes {
        println!("{}: {} fingerprints", node.id, node.entries);
    }

    println!("\n=== crash node-1 ===");
    cluster.kill_node(NodeId::new(1))?;
    println!("alive nodes: {}", cluster.alive_count());

    let exists = cluster.lookup_insert_batch(&batch)?;
    let found = exists.iter().filter(|e| **e).count();
    println!("lookups after the crash: {found}/3000 still answered 'exists'");
    assert_eq!(found, 3000, "replication must mask the crash");

    println!("\n=== restart node-1 (cold) and add a fourth node ===");
    cluster.restart_cold(NodeId::new(1))?;
    let (new_id, report) = cluster.add_node()?;
    println!(
        "{new_id} joined; rebalance scanned {} and moved {} fingerprints",
        report.scanned, report.moved
    );

    let exists = cluster.lookup_insert_batch(&batch)?;
    let found = exists.iter().filter(|e| **e).count();
    println!("lookups after rebalance: {found}/3000 answered 'exists'");
    println!("(fingerprints whose whole replica set shifted read as new —");
    println!(" a safe false-negative: the client re-uploads those chunks and");
    println!(" the lookup above already re-registered them)");

    println!("\n=== final layout ===");
    for node in &cluster.stats()?.nodes {
        println!("{}: {} fingerprints", node.id, node.entries);
    }

    cluster.shutdown()?;
    Ok(())
}
