//! Realistic backup scenario: content-defined chunking, incremental
//! change, file-backed containers, restore verification.
//!
//! Models the paper's motivating client: a user who backs up a dataset,
//! edits a little of it, and backs up again — the second pass should ship
//! only the changed region thanks to CDC's shift resistance.
//!
//! ```text
//! cargo run --example backup_service
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use shhc::prelude::*;
use shhc::{BackupService, ClusterConfig, ShhcCluster};

fn main() -> Result<()> {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3))?;

    // File-backed containers (survive process restarts), 4 MiB each —
    // the shape of a real cloud-upload unit.
    let dir = std::env::temp_dir().join(format!("shhc-example-{}", std::process::id()));
    let store = FileChunkStore::open(&dir, 4 * 1024 * 1024)?;

    // Rabin content-defined chunking: 2 KiB min, 8 KiB target, 64 KiB max.
    let chunker = RabinChunker::new(2048, 8192, 65536);
    let service = BackupService::new(cluster.clone(), chunker, store, 256);

    // A 4 MiB "mail spool".
    let mut rng = StdRng::seed_from_u64(2026);
    let mut dataset = vec![0u8; 4 * 1024 * 1024];
    rng.fill_bytes(&mut dataset);

    println!("=== full backup ===");
    let full = service.backup(StreamId::new(1), &dataset)?;
    println!(
        "{} chunks, {} new, shipped {} of {} bytes",
        full.total_chunks, full.new_chunks, full.stored_bytes, full.logical_bytes
    );

    // Edit: insert 1 KiB in the middle (shifts everything after it) and
    // overwrite 4 KiB near the start.
    let insert_at = dataset.len() / 2;
    let insertion: Vec<u8> = (0..1024).map(|_| rng.gen()).collect();
    for (i, b) in insertion.iter().enumerate() {
        dataset.insert(insert_at + i, *b);
    }
    for b in dataset[8192..12288].iter_mut() {
        *b = rng.gen();
    }

    println!("\n=== incremental backup after a 1 KiB insertion + 4 KiB edit ===");
    let incr = service.backup(StreamId::new(2), &dataset)?;
    println!(
        "{} chunks, {} new ({}%), shipped {} of {} bytes ({:.1}% of logical)",
        incr.total_chunks,
        incr.new_chunks,
        incr.new_chunks * 100 / incr.total_chunks,
        incr.stored_bytes,
        incr.logical_bytes,
        incr.stored_bytes as f64 * 100.0 / incr.logical_bytes as f64
    );
    assert!(
        incr.new_chunks * 20 < incr.total_chunks,
        "CDC should localize the edit: {} new of {}",
        incr.new_chunks,
        incr.total_chunks
    );

    println!("\n=== restore both versions and verify ===");
    let restored = service.restore(&incr.manifest)?;
    assert_eq!(restored, dataset);
    println!(
        "incremental restore: {} bytes, byte-identical ✔",
        restored.len()
    );

    let containers = service.store().stats().containers;
    println!("\ncontainers on disk: {containers} under {}", dir.display());

    cluster.shutdown()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
