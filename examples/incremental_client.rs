//! A week of incremental backups: the paper's client application role.
//!
//! Simulates a user dataset mutating day by day; the backup client
//! detects changed files, deduplicates their chunks against the cluster,
//! retires old snapshots (with garbage collection), and finally restores
//! and verifies the latest state.
//!
//! ```text
//! cargo run --example incremental_client
//! ```

use shhc::prelude::*;
use shhc::{BackupClient, BackupService, ClusterConfig, ShhcCluster};
use shhc_workload::{Dataset, DatasetSpec, MutationSpec};

fn main() -> Result<()> {
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(3))?;
    let service = BackupService::new(
        cluster.clone(),
        RabinChunker::new(1024, 4096, 32768),
        MemChunkStore::new(16 << 20),
        128,
    );
    let mut client = BackupClient::new(service);

    let mut dataset = Dataset::generate(&DatasetSpec {
        files: 48,
        mean_file_size: 24 * 1024,
        seed: 2026,
    });
    println!(
        "dataset: {} files, {} KiB total\n",
        dataset.len(),
        dataset.total_bytes() / 1024
    );

    let retention = 3usize;
    let mut retained = Vec::new();

    for day in 0..7u64 {
        if day > 0 {
            dataset.mutate(&MutationSpec::default(), 100 + day);
        }
        let (snapshot, report) = client.snapshot(&dataset)?;
        println!(
            "day {day}: {} files ({} changed, {} unchanged) — uploaded {} KiB, {} new / {} dup chunks",
            report.files_total,
            report.files_changed,
            report.files_unchanged,
            report.stored_bytes / 1024,
            report.new_chunks,
            report.duplicate_chunks,
        );
        retained.push((snapshot, dataset.clone()));
        if retained.len() > retention {
            let (old, _) = retained.remove(0);
            let del = client.delete_snapshot(&old)?;
            println!(
                "        retired snapshot {} — freed {} chunks",
                old.stream, del.chunks_freed
            );
        }
    }

    println!("\nverifying every retained snapshot restores byte-identically…");
    for (snapshot, expected) in &retained {
        let restored = client.restore_snapshot(snapshot)?;
        assert_eq!(&restored, expected);
        println!(
            "  snapshot {}: {} files, {} KiB ✔",
            snapshot.stream,
            restored.len(),
            restored.total_bytes() / 1024
        );
    }

    let store = client.service().store().stats();
    println!(
        "\nstore after retention: {} chunks, {} KiB in {} containers",
        store.chunks,
        store.bytes / 1024,
        store.containers
    );

    cluster.shutdown()?;
    Ok(())
}
