//! Elastic membership under live traffic — epoch-versioned ring, online
//! join, and graceful drain.
//!
//! A writer thread keeps inserting fingerprints the whole time; the
//! cluster joins a node and then drains one **without pausing traffic**:
//! the new epoch's ring is installed first, misses inside in-flight
//! migration ranges dual-read from the previous owner, and the data
//! moves in chunks behind the scenes.
//!
//! ```text
//! cargo run --example elastic_cluster
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use shhc::{ClusterConfig, ShhcCluster};
use shhc_types::{Fingerprint, NodeId, Result};

fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
    range
        .map(|i| Fingerprint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)))
        .collect()
}

fn main() -> Result<()> {
    // Room for the resident population plus everything the writer adds.
    let mut node_config = shhc::NodeConfig::small_test();
    node_config.flash = shhc_flash::FlashConfig::medium_test();
    node_config.cache_capacity = 4_096;
    node_config.bloom_expected = 100_000;
    let cluster = ShhcCluster::spawn(ClusterConfig::new(3, node_config).with_migration_chunk(128))?;
    println!(
        "=== epoch {}: 3 nodes, ingest 6000 fingerprints ===",
        cluster.epoch()
    );
    let resident = fps(0..6_000);
    for window in resident.chunks(512) {
        cluster.lookup_insert_batch(window)?;
    }

    // Live traffic: a writer keeps registering new fingerprints through
    // every membership change below.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let cluster = cluster.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<Vec<Fingerprint>> {
            let mut written = Vec::new();
            let mut next = 1_000_000u64;
            while !stop.load(Ordering::Relaxed) && written.len() < 20_000 {
                let batch = fps(next..next + 64);
                next += 64;
                cluster.lookup_insert_batch(&batch)?;
                written.extend(batch);
            }
            Ok(written)
        })
    };

    println!("\n=== join node-3 (traffic keeps flowing) ===");
    let (new_id, join) = cluster.add_node()?;
    println!(
        "{new_id} joined: epoch {} → {}, moved {} fingerprints in {} chunks \
         over {:.0} ms",
        join.from_epoch,
        join.to_epoch,
        join.moved,
        join.chunks,
        join.wall_clock.as_secs_f64() * 1e3
    );

    println!("\n=== drain node-1 (graceful decommission) ===");
    let drain = cluster.drain_node(NodeId::new(1))?;
    println!(
        "node-1 drained: epoch {} → {}, moved {} fingerprints in {} chunks \
         over {:.0} ms; final scan found {} entries",
        drain.from_epoch,
        drain.to_epoch,
        drain.moved,
        drain.chunks,
        drain.wall_clock.as_secs_f64() * 1e3,
        drain.post_scan_entries
    );
    assert_eq!(drain.post_scan_entries, 0, "drain verifies the node empty");

    stop.store(true, Ordering::Relaxed);
    let written = writer.join().expect("writer thread")?;
    println!(
        "\nwriter registered {} fingerprints during the churn",
        written.len()
    );

    // Nothing was stranded: everything written before or during the
    // membership changes still deduplicates.
    let mut found = 0usize;
    for window in resident.chunks(512).chain(written.chunks(512)) {
        found += cluster
            .lookup_insert_batch(window)?
            .iter()
            .filter(|e| **e)
            .count();
    }
    let total = resident.len() + written.len();
    println!("dedup after churn: {found}/{total} fingerprints answered 'exists'");
    assert_eq!(found, total, "no fingerprint may be stranded by churn");

    let stats = cluster.stats()?;
    println!("\n=== final layout (epoch {}) ===", stats.epoch);
    for node in &stats.nodes {
        println!("{}: {} fingerprints", node.id, node.entries);
    }
    println!("drained: {:?}", stats.drained);

    cluster.shutdown()?;
    Ok(())
}
