//! Quickstart: spawn a hash cluster, back up data twice, watch dedup work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use shhc::prelude::*;
use shhc::{BackupService, ClusterConfig, ShhcCluster};

fn main() -> Result<()> {
    // A 4-node hybrid hash cluster (one server thread per node), as in
    // the paper's testbed.
    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(4))?;

    // The full backup pipeline: fixed 4 KB chunking (the paper's FIU
    // configuration), an in-memory container store standing in for cloud
    // storage, and 128-fingerprint batches.
    let store = MemChunkStore::new(4 * 1024 * 1024);
    let service = BackupService::new(cluster.clone(), FixedChunker::new(4096), store, 128);

    // Synthesize a 2 MiB "user directory".
    let data: Vec<u8> = (0..2 * 1024 * 1024u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();

    println!("=== first backup (everything is new) ===");
    let first = service.backup(StreamId::new(1), &data)?;
    print_report(&first);

    println!("\n=== second backup of the same data (everything deduplicates) ===");
    let second = service.backup(StreamId::new(2), &data)?;
    print_report(&second);

    println!("\n=== restore & verify ===");
    let restored = service.restore(&second.manifest)?;
    assert_eq!(restored, data);
    println!("restored {} bytes, byte-identical ✔", restored.len());

    println!("\n=== cluster state ===");
    let stats = cluster.stats()?;
    for node in &stats.nodes {
        println!(
            "{}: {} fingerprints, {} RAM hits, {} SSD hits, {} inserts",
            node.id, node.entries, node.stats.ram_hits, node.stats.ssd_hits, node.stats.inserted
        );
    }

    cluster.shutdown()?;
    Ok(())
}

fn print_report(report: &shhc::BackupReport) {
    println!(
        "chunks: {} total, {} new, {} duplicate",
        report.total_chunks, report.new_chunks, report.duplicate_chunks
    );
    println!(
        "bytes:  {} logical, {} shipped to storage (dedup ratio {:.1}x)",
        report.logical_bytes,
        report.stored_bytes,
        report.dedup_ratio()
    );
}
