//! The paper's Figure 1 motivation simulator, at example scale.
//!
//! Shows why a centralized fingerprint server cannot keep up: execution
//! time for a fixed number of lookups as the offered rate grows, for
//! several cluster sizes.
//!
//! ```text
//! cargo run --release --example motivation_sim
//! ```

use shhc::motivation::{execution_time, MotivationConfig};

fn main() {
    let total = 50_000u64;
    let rates = [5_000.0, 10_000.0, 20_000.0, 40_000.0, 80_000.0];
    let node_counts = [1u32, 2, 4, 8];

    println!("execution time (ms) for {total} fingerprint lookups\n");
    print!("{:>12}", "rate (req/s)");
    for n in node_counts {
        print!(" {:>10}", format!("{n} node(s)"));
    }
    println!();

    for rate in rates {
        print!("{rate:>12.0}");
        for nodes in node_counts {
            let t = execution_time(MotivationConfig {
                nodes,
                rate_per_sec: rate,
                total_requests: total,
                ..MotivationConfig::default()
            });
            print!(" {:>10.1}", t.as_secs_f64() * 1e3);
        }
        println!();
    }

    println!("\nAt low rates every configuration is arrival-bound (same time).");
    println!("Past a node's capacity (~31k lookups/s) the centralized server");
    println!("saturates while larger clusters keep absorbing the load — the");
    println!("motivation for a distributed hash cluster (paper Figure 1).");
}
