//! Many clients, one shared web front-end — the paper's Figure-4 shape.
//!
//! N client threads take incremental snapshots through clones of one
//! `BackupService`; every thread's fingerprint lookups flow through the
//! service's shared front-end, where they aggregate into cross-client
//! batches. Prints per-client dedup ratios and the front-end's batch
//! occupancy and queueing-delay stats.
//!
//! Run with: `cargo run --release --example concurrent_frontend`

use shhc::prelude::*;
use shhc::BackupClient;
use shhc_workload::{Dataset, DatasetSpec, MutationSpec};

const CLIENTS: u32 = 4;

fn main() -> Result<()> {
    println!("SHHC concurrent shared front-end: {CLIENTS} clients, one batch queue\n");

    let cluster = ShhcCluster::spawn(ClusterConfig::small_test(2))?;
    let service = BackupService::new(
        cluster.clone(),
        FixedChunker::new(512),
        MemChunkStore::new(1 << 24),
        32,
    );

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let service = service.clone();
        handles.push(std::thread::spawn(move || -> Result<_> {
            // Each client owns its session state over the shared service.
            let mut client = BackupClient::new(service);
            let mut dataset = Dataset::generate(&DatasetSpec {
                files: 8,
                mean_file_size: 16 * 1024,
                seed: 1000 + u64::from(c),
            });
            let (_, first) = client.snapshot(&dataset)?;
            dataset.mutate(
                &MutationSpec {
                    edits: 2,
                    appends: 1,
                    creates: 1,
                    deletes: 0,
                    change_size: 1024,
                },
                2000 + u64::from(c),
            );
            let (snap, second) = client.snapshot(&dataset)?;
            let restored = client.restore_snapshot(&snap)?;
            assert_eq!(restored, dataset, "client {c}: restore must round-trip");
            Ok((c, first, second))
        }));
    }

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "client", "new chunks", "dup chunks", "stored bytes", "dedup ratio"
    );
    for handle in handles {
        let (c, first, second) = handle.join().expect("client thread")?;
        let logical: u64 = first.stored_bytes + second.stored_bytes;
        let new = first.new_chunks + second.new_chunks;
        let dup = first.duplicate_chunks + second.duplicate_chunks;
        let ratio = (new + dup) as f64 / new.max(1) as f64;
        println!("{c:>8} {new:>12} {dup:>12} {logical:>14} {ratio:>11.2}x");
    }

    let stats = service.frontend().stats();
    println!("\nshared front-end:");
    println!("  batches released:      {}", stats.batches);
    println!("  fingerprints batched:  {}", stats.fingerprints);
    println!(
        "  mean batch occupancy:  {:.1} (max {})",
        stats.mean_occupancy(),
        stats.max_occupancy
    );
    println!(
        "  closed by size/age/flush: {}/{}/{}",
        stats.closed_by_size, stats.closed_by_age, stats.closed_by_flush
    );
    if let Some(p99) = stats.delay_quantile(0.99) {
        println!(
            "  queueing delay mean/p99: {:.0} µs / {:.0} µs",
            stats.mean_delay().as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6
        );
    }
    let cluster_stats = cluster.stats()?;
    println!(
        "  cluster fingerprints:  {} across {} nodes",
        cluster_stats.total_entries(),
        cluster_stats.nodes.len()
    );

    drop(service);
    cluster.shutdown()?;
    println!("\nok: {CLIENTS} concurrent clients, byte-exact restores, one shared batch queue");
    Ok(())
}
